//! The `cmr-lint` binary: walks the workspace sources, applies the rule set,
//! prints findings as `file:line:col [rule] message`, and exits non-zero when
//! anything is found.
//!
//! ```text
//! cargo run -p cmr-lint --release -- --workspace
//! cargo run -p cmr-lint --release -- --workspace --json results/LINT_report.json
//! cargo run -p cmr-lint --release -- --workspace --graph results/CALLGRAPH.json
//! cargo run -p cmr-lint --release -- crates/tensor/src/op.rs
//! ```

use cmr_lint::report::{render_json, render_summary, render_text};
use cmr_lint::rules::{analyze, SourceFile, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directory names never descended into: build output, the lint's own
/// intentionally-violating fixtures, vendored stand-in crates, VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor", ".git"];

/// Roots walked by `--workspace`, relative to the repo root.
const WORKSPACE_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

fn usage() -> String {
    let mut s = String::from(
        "usage: cmr-lint [--workspace] [--root DIR] [--json PATH] [--graph PATH]\n\
        \x20                [--explain RULE] [PATH...]\n\n\
         Walks the given files/directories (or, with --workspace, the repo's\n\
         crates/, src/, tests/ and examples/ trees) and reports rule\n\
         violations as `file:line:col [rule] message`. `--graph` writes the\n\
         deterministic call-graph artifact (CALLGRAPH.json) with per-crate\n\
         panic-surface metrics, plus the lock-order artifact (LOCKGRAPH.json)\n\
         and the taint artifact (TAINTGRAPH.json) in the same directory.\n\
         `--explain RULE` prints the rule's documentation — for the taint\n\
         rules, the source/sink/sanitizer definitions and an example witness\n\
         chain — and exits. Exits 1 when findings exist, 2 on usage or IO\n\
         errors.\n\nrules:\n",
    );
    for (id, desc) in RULES {
        s.push_str(&format!("  {id:<22} {desc}\n"));
    }
    s
}

/// Long-form documentation for `--explain`. The taint rules get the full
/// source/sink/sanitizer model; every other rule falls back to its one-line
/// description from [`RULES`].
fn explain(rule: &str) -> Result<String, String> {
    let taint_model = "\
sources (what makes a value untrusted):\n\
  - `&[u8]` parameters of non-test fns — the byte-slice boundary every\n\
    loader/parser crosses; whatever crosses it is attacker-shaped\n\
  - `std::fs::read` / `fs::read_to_string` results (disk bytes)\n\
  - `std::env::var` / `var_os` strings (environment)\n\
  - buffer-filling reads: `.read(&mut buf)` / `.read_exact` /\n\
    `.read_to_end` / `.read_line` taint the destination buffer\n\
    (the returned byte count is trusted — it fits the buffer)\n\
\n\
propagation: `let` bindings, mutated receivers\n\
  (`head.extend_from_slice(&tmp[..n])` taints `head`), arguments to\n\
  resolved workspace callees, tainted `self`, and return values (judged\n\
  from return spans, so internally-clamping fns stay clean).\n\
\n\
sanitizers (what cleans a flow):\n\
  - a dominating comparison mentioning the sink operand:\n\
      if count > buf.remaining() { return Err(…) }\n\
      let buf = Vec::with_capacity(count);              // sanitized\n\
  - `.min(cap)` / `.clamp(lo, hi)` rebinds; `& mask` / `%` bounding\n\
  - `// cmr-lint: trust(reason)` on or above the sink line — the escape\n\
    hatch is stale-allow accounted, so an unused trust is itself a finding\n\
  - NOT sanitizers: `checked_mul`/`saturating_*` (they prevent overflow,\n\
    not magnitude)\n";
    let chain = |sink: &str| {
        format!(
            "\nexample witness chain:\n\
             \x20 untrusted bytes `bytes: &[u8]` (crates/nn/src/serialize.rs:98)\n\
             \x20   → nn::load_params → nn::read_params_body\n\
             \x20   → {sink}\n"
        )
    };
    match rule {
        "untrusted-length" => Ok(format!(
            "untrusted-length: a network/disk-derived value reaches an\n\
             allocation/length sink unsanitized.\n\n\
             sinks: `Vec::with_capacity` / `reserve` / `reserve_exact` /\n\
             `set_len` arguments and `vec![elem; len]` lengths. A hostile\n\
             length field that reaches one of these before validation is an\n\
             OOM abort waiting to happen.\n\n{taint_model}{}",
            chain("Vec::with_capacity(count) (crates/nn/src/serialize.rs:131)")
        )),
        "untrusted-index" => Ok(format!(
            "untrusted-index: a network/disk-derived value reaches an\n\
             index/range sink unsanitized.\n\n\
             sinks: slice index/range operands (`buf[n]`, `&buf[..n]`,\n\
             `buf[a..b]`) and `split_at` / `split_at_mut` arguments. An\n\
             unvalidated offset panics (or worse) on hostile input.\n\n{taint_model}{}",
            chain("slice index [n] (crates/nn/src/serialize.rs:154)")
        )),
        _ => RULES
            .iter()
            .find(|&&(id, _)| id == rule)
            .map(|&(id, desc)| format!("{id}: {desc}\n"))
            .ok_or_else(|| format!("unknown rule {rule:?}\n\n{}", usage())),
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative unix-style path for rule matching and reporting.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for c in rel.components() {
        match c {
            std::path::Component::RootDir => out.push('/'),
            other => {
                if !out.is_empty() && !out.ends_with('/') {
                    out.push('/');
                }
                out.push_str(&other.as_os_str().to_string_lossy());
            }
        }
    }
    out
}

struct Args {
    workspace: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    graph: Option<PathBuf>,
    explain: Option<String>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: None,
        graph: None,
        explain: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root takes a directory".to_string())?,
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json takes a file path".to_string())?,
                ));
            }
            "--graph" => {
                args.graph = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--graph takes a file path".to_string())?,
                ));
            }
            "--explain" => {
                args.explain =
                    Some(it.next().ok_or_else(|| "--explain takes a rule id".to_string())?);
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n\n{}", usage()));
            }
            other => args.paths.push(PathBuf::from(other)),
        }
    }
    if args.explain.is_none() && !args.workspace && args.paths.is_empty() {
        return Err(format!("nothing to lint\n\n{}", usage()));
    }
    Ok(args)
}

fn run_cli() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if let Some(rule) = &args.explain {
        print!("{}", explain(rule)?);
        return Ok(ExitCode::SUCCESS);
    }
    let mut files: Vec<PathBuf> = Vec::new();
    if args.workspace {
        for root in WORKSPACE_ROOTS {
            let dir = args.root.join(root);
            if dir.is_dir() {
                walk(&dir, &mut files)?;
            }
        }
    }
    for p in &args.paths {
        if p.is_dir() {
            walk(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    files.dedup();

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        sources.push(SourceFile { path: rel_path(&args.root, path), src });
    }

    let started = std::time::Instant::now();
    let analysis = analyze(&sources);
    let elapsed_ms = started.elapsed().as_millis() as u64;
    print!("{}", render_text(&analysis.findings, sources.len()));
    print!("{}", render_summary(&analysis));
    let write_artifact = |path: &PathBuf, content: String| -> Result<(), String> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, content).map_err(|e| format!("write {}: {e}", path.display()))
    };
    if let Some(json_path) = &args.json {
        write_artifact(json_path, render_json(&analysis.findings, sources.len(), elapsed_ms))?;
    }
    if let Some(graph_path) = &args.graph {
        write_artifact(graph_path, analysis.graph.render_json())?;
        let lock_path = graph_path.with_file_name("LOCKGRAPH.json");
        write_artifact(&lock_path, analysis.locks.render_json())?;
        let taint_path = graph_path.with_file_name("TAINTGRAPH.json");
        write_artifact(&taint_path, analysis.taint.render_json())?;
    }
    Ok(if analysis.findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn main() -> ExitCode {
    match run_cli() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
