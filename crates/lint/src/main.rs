//! The `cmr-lint` binary: walks the workspace sources, applies the rule set,
//! prints findings as `file:line:col [rule] message`, and exits non-zero when
//! anything is found.
//!
//! ```text
//! cargo run -p cmr-lint --release -- --workspace
//! cargo run -p cmr-lint --release -- --workspace --json results/LINT_report.json
//! cargo run -p cmr-lint --release -- --workspace --graph results/CALLGRAPH.json
//! cargo run -p cmr-lint --release -- crates/tensor/src/op.rs
//! ```

use cmr_lint::report::{render_json, render_summary, render_text};
use cmr_lint::rules::{analyze, SourceFile, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directory names never descended into: build output, the lint's own
/// intentionally-violating fixtures, vendored stand-in crates, VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor", ".git"];

/// Roots walked by `--workspace`, relative to the repo root.
const WORKSPACE_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

fn usage() -> String {
    let mut s = String::from(
        "usage: cmr-lint [--workspace] [--root DIR] [--json PATH] [--graph PATH] [PATH...]\n\n\
         Walks the given files/directories (or, with --workspace, the repo's\n\
         crates/, src/, tests/ and examples/ trees) and reports rule\n\
         violations as `file:line:col [rule] message`. `--graph` writes the\n\
         deterministic call-graph artifact (CALLGRAPH.json) with per-crate\n\
         panic-surface metrics, plus the lock-order artifact (LOCKGRAPH.json,\n\
         in the same directory) with the workspace lock inventory, the\n\
         acquired-while-held edge list and cycle count. Exits 1 when findings\n\
         exist, 2 on usage or IO errors.\n\nrules:\n",
    );
    for (id, desc) in RULES {
        s.push_str(&format!("  {id:<22} {desc}\n"));
    }
    s
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative unix-style path for rule matching and reporting.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for c in rel.components() {
        match c {
            std::path::Component::RootDir => out.push('/'),
            other => {
                if !out.is_empty() && !out.ends_with('/') {
                    out.push('/');
                }
                out.push_str(&other.as_os_str().to_string_lossy());
            }
        }
    }
    out
}

struct Args {
    workspace: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    graph: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: None,
        graph: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root takes a directory".to_string())?,
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json takes a file path".to_string())?,
                ));
            }
            "--graph" => {
                args.graph = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--graph takes a file path".to_string())?,
                ));
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n\n{}", usage()));
            }
            other => args.paths.push(PathBuf::from(other)),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err(format!("nothing to lint\n\n{}", usage()));
    }
    Ok(args)
}

fn run_cli() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let mut files: Vec<PathBuf> = Vec::new();
    if args.workspace {
        for root in WORKSPACE_ROOTS {
            let dir = args.root.join(root);
            if dir.is_dir() {
                walk(&dir, &mut files)?;
            }
        }
    }
    for p in &args.paths {
        if p.is_dir() {
            walk(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    files.dedup();

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        sources.push(SourceFile { path: rel_path(&args.root, path), src });
    }

    let analysis = analyze(&sources);
    print!("{}", render_text(&analysis.findings, sources.len()));
    print!("{}", render_summary(&analysis));
    let write_artifact = |path: &PathBuf, content: String| -> Result<(), String> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, content).map_err(|e| format!("write {}: {e}", path.display()))
    };
    if let Some(json_path) = &args.json {
        write_artifact(json_path, render_json(&analysis.findings, sources.len()))?;
    }
    if let Some(graph_path) = &args.graph {
        write_artifact(graph_path, analysis.graph.render_json())?;
        let lock_path = graph_path.with_file_name("LOCKGRAPH.json");
        write_artifact(&lock_path, analysis.locks.render_json())?;
    }
    Ok(if analysis.findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn main() -> ExitCode {
    match run_cli() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
