//! The repo-specific rule set and the engine that applies it.
//!
//! Rules operate on the token stream produced by [`crate::lexer`], so string
//! literals, comments and doc examples can never trip them. Each finding is
//! anchored to a `file:line:col` and carries its rule id; inline
//! `// cmr-lint: allow(rule-id) reason` comments suppress findings of that
//! rule on the same line or the line directly below the comment — and the
//! reason is mandatory (a missing reason is itself a finding).
//!
//! | id | what it enforces |
//! |----|------------------|
//! | `op-coverage` | every `Op` variant in `crates/tensor/src/op.rs` has a `grad_check` test in `check.rs` |
//! | `no-panic-lib` | no `unwrap()/expect()/panic!/todo!/unimplemented!` in non-test library code |
//! | `env-centralization` | `env::var` only in `crates/tensor/src/threading.rs` and `crates/bench` |
//! | `no-println-lib` | no `println!/eprintln!/dbg!` outside `crates/bench`, binaries, examples, tests |
//! | `float-eq` | no `==`/`!=` against float literals — use a tolerance helper |

use crate::lexer::{lex, Token, TokenKind};

/// Every rule id with a one-line description (drives `--help` and the
/// unknown-rule check on allow comments).
pub const RULES: &[(&str, &str)] = &[
    ("op-coverage", "every Op enum variant needs a grad_check test in crates/tensor/src/check.rs"),
    ("no-panic-lib", "unwrap()/expect()/panic!/todo!/unimplemented! banned in non-test library code"),
    ("env-centralization", "std::env::var only in crates/tensor/src/threading.rs and crates/bench"),
    ("no-println-lib", "println!/eprintln!/dbg! banned outside crates/bench, binaries, examples, tests"),
    ("float-eq", "direct ==/!= against a float literal; compare with a tolerance instead"),
    ("allow-missing-reason", "a cmr-lint allow comment must carry a reason after the rule id"),
    ("allow-unknown-rule", "a cmr-lint allow comment names a rule id that does not exist"),
    ("lex-error", "the file could not be lexed (unterminated literal or comment)"),
];

/// Path of the operator enum R1 audits.
pub const OP_PATH: &str = "crates/tensor/src/op.rs";
/// Path of the gradient-check suite R1 audits against.
pub const CHECK_PATH: &str = "crates/tensor/src/check.rs";

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Repo-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the canonical `file:line:col [rule] message`
    /// form.
    pub fn render(&self) -> String {
        format!("{}:{}:{} [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// A source file handed to the engine.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Full file contents.
    pub src: String,
}

/// A parsed, valid `// cmr-lint: allow(rule) reason` directive.
struct Allow {
    rule: String,
    line: u32,
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

fn has_component(path: &str, comp: &str) -> bool {
    path.split('/').any(|c| c == comp)
}

fn is_test_path(path: &str) -> bool {
    has_component(path, "tests") || has_component(path, "benches")
}

fn is_example_path(path: &str) -> bool {
    has_component(path, "examples")
}

fn is_bin_path(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("/main.rs") || path == "src/main.rs"
}

fn is_bench_crate(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

fn env_var_allowed(path: &str) -> bool {
    path == "crates/tensor/src/threading.rs" || is_bench_crate(path)
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Does an attribute token mark the following item as test-only?
/// Matches `#[test]` and any `#[cfg(…test…)]` that is not `not(test)`.
fn attr_is_test(text: &str) -> bool {
    let inner = text
        .trim_start_matches('#')
        .trim_start_matches('!')
        .trim_start_matches('[')
        .trim_end_matches(']')
        .trim();
    if inner == "test" || inner.starts_with("test(") {
        return true;
    }
    if let Some(rest) = inner.strip_prefix("cfg") {
        let compact: String = rest.chars().filter(|c| !c.is_whitespace()).collect();
        return compact.contains("test") && !compact.contains("not(test)");
    }
    false
}

/// Token-index ranges (inclusive start, exclusive end) covered by test-only
/// items: a `#[test]`/`#[cfg(test)]` attribute followed by a braced item.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if let TokenKind::Attr { inner: false } = t.kind {
            if attr_is_test(&t.text) {
                // Find the item's opening brace; a `;` first means the item
                // has no body (e.g. `#[cfg(test)] use …;` / `mod tests;`).
                let mut j = i + 1;
                let mut open = None;
                while j < tokens.len() {
                    let u = &tokens[j];
                    if u.is_punct("{") {
                        open = Some(j);
                        break;
                    }
                    if u.is_punct(";") {
                        break;
                    }
                    j += 1;
                }
                if let Some(start) = open {
                    let mut depth = 0isize;
                    let mut k = start;
                    while k < tokens.len() {
                        if tokens[k].is_punct("{") {
                            depth += 1;
                        } else if tokens[k].is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    regions.push((i, (k + 1).min(tokens.len())));
                    i = k + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

// ---------------------------------------------------------------------------
// Allow-comment parsing
// ---------------------------------------------------------------------------

fn comment_body(text: &str) -> &str {
    let t = text.trim_start();
    if let Some(rest) = t.strip_prefix("//") {
        rest.trim_start_matches(['/', '!']).trim()
    } else if let Some(rest) = t.strip_prefix("/*") {
        rest.trim_start_matches(['*', '!']).trim_end_matches("*/").trim()
    } else {
        t
    }
}

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|&(r, _)| r == id)
}

/// Extracts allow directives from comment tokens; malformed directives
/// become findings instead of silently suppressing anything.
fn collect_allows(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let body = comment_body(&t.text);
        let Some(directive) = body.strip_prefix("cmr-lint:") else { continue };
        let directive = directive.trim();
        let mut fail = |rule: &'static str, message: String| {
            findings.push(Finding { file: path.to_string(), line: t.line, col: t.col, rule, message });
        };
        let Some(rest) = directive.strip_prefix("allow(") else {
            fail(
                "allow-unknown-rule",
                format!("malformed cmr-lint directive {directive:?}: expected `allow(rule-id) reason`"),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("allow-unknown-rule", "unclosed `allow(` in cmr-lint directive".to_string());
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim();
        if !known_rule(&rule) {
            fail("allow-unknown-rule", format!("allow names unknown rule {rule:?}"));
            continue;
        }
        if reason.is_empty() {
            fail(
                "allow-missing-reason",
                format!("allow({rule}) has no reason; write `// cmr-lint: allow({rule}) <why>`"),
            );
            continue;
        }
        allows.push(Allow { rule, line: t.line });
    }
    allows
}

/// A finding is suppressed by a valid allow for its rule on the same line or
/// on the line directly above (a stand-alone allow comment).
fn suppressed(allows: &[Allow], finding: &Finding) -> bool {
    allows
        .iter()
        .any(|a| a.rule == finding.rule && (a.line == finding.line || a.line + 1 == finding.line))
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

/// Banned `.method()` calls for `no-panic-lib`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Banned macros for `no-panic-lib`.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
/// Banned macros for `no-println-lib`.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "dbg"];

fn code_tokens(tokens: &[Token]) -> Vec<usize> {
    (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect()
}

struct FileCtx<'a> {
    path: &'a str,
    tokens: &'a [Token],
    /// Indices into `tokens` of non-comment tokens, in order.
    code: Vec<usize>,
    regions: Vec<(usize, usize)>,
    test_file: bool,
    example: bool,
    bin: bool,
}

impl<'a> FileCtx<'a> {
    fn exempt_panic(&self, tok_idx: usize) -> bool {
        self.test_file
            || self.example
            || self.bin
            || in_regions(&self.regions, tok_idx)
    }

    fn exempt_print(&self, tok_idx: usize) -> bool {
        self.exempt_panic(tok_idx) || is_bench_crate(self.path)
    }

    fn finding(&self, tok: &Token, rule: &'static str, message: String) -> Finding {
        Finding { file: self.path.to_string(), line: tok.line, col: tok.col, rule, message }
    }
}

fn rule_no_panic_lib(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.exempt_panic(i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = ci.checked_sub(1).map(|p| &ctx.tokens[ctx.code[p]]);
        let next = ctx.code.get(ci + 1).map(|&n| &ctx.tokens[n]);
        if PANIC_METHODS.contains(&t.text.as_str())
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("("))
        {
            findings.push(ctx.finding(
                t,
                "no-panic-lib",
                format!(".{}() can panic; return a typed error instead", t.text),
            ));
        }
        if PANIC_MACROS.contains(&t.text.as_str()) && next.is_some_and(|n| n.is_punct("!")) {
            findings.push(ctx.finding(
                t,
                "no-panic-lib",
                format!("{}! in library code; return a typed error instead", t.text),
            ));
        }
    }
}

fn rule_env_centralization(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if env_var_allowed(ctx.path) {
        return;
    }
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.test_file || in_regions(&ctx.regions, i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if !(t.is_ident("var") || t.is_ident("var_os")) {
            continue;
        }
        let Some(p1) = ci.checked_sub(1).map(|p| &ctx.tokens[ctx.code[p]]) else { continue };
        let Some(p2) = ci.checked_sub(2).map(|p| &ctx.tokens[ctx.code[p]]) else { continue };
        if p1.is_punct("::") && p2.is_ident("env") {
            findings.push(ctx.finding(
                t,
                "env-centralization",
                "env::var outside crates/tensor/src/threading.rs and crates/bench; \
                 route runtime knobs through the threading module"
                    .to_string(),
            ));
        }
    }
}

fn rule_no_println_lib(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.exempt_print(i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && ctx.code.get(ci + 1).is_some_and(|&n| ctx.tokens[n].is_punct("!"))
        {
            findings.push(ctx.finding(
                t,
                "no-println-lib",
                format!("{}! in library code; only crates/bench, binaries and tests may print", t.text),
            ));
        }
    }
}

fn rule_float_eq(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.test_file || ctx.example || in_regions(&ctx.regions, i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_float = ci
            .checked_sub(1)
            .is_some_and(|p| ctx.tokens[ctx.code[p]].kind == TokenKind::Float);
        let next_float =
            ctx.code.get(ci + 1).is_some_and(|&n| ctx.tokens[n].kind == TokenKind::Float);
        if prev_float || next_float {
            findings.push(ctx.finding(
                t,
                "float-eq",
                format!("`{}` against a float literal; compare with a tolerance helper", t.text),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// R1: op-coverage (cross-file)
// ---------------------------------------------------------------------------

/// `MatMulTransB` and `matmul_transb` both normalise to `matmultransb`,
/// which is what makes variant↔builder-method matching robust to the
/// repo's `matmul` (not `mat_mul`) naming.
fn normalize(name: &str) -> String {
    name.chars().filter(|&c| c != '_').collect::<String>().to_lowercase()
}

/// Extracts the variant names (with positions) of `pub enum Op { … }`.
fn op_variants(tokens: &[Token]) -> Vec<(String, u32, u32)> {
    let code = code_tokens(tokens);
    let mut variants = Vec::new();
    let mut ci = 0usize;
    // Find `enum Op {`.
    let mut body_start = None;
    while ci + 2 < code.len() {
        if tokens[code[ci]].is_ident("enum")
            && tokens[code[ci + 1]].is_ident("Op")
            && tokens[code[ci + 2]].is_punct("{")
        {
            body_start = Some(ci + 3);
            break;
        }
        ci += 1;
    }
    let Some(start) = body_start else { return variants };
    let mut brace = 1isize;
    let mut paren = 0isize;
    let mut prev_sig: Option<String> = Some("{".to_string());
    for &idx in &code[start..] {
        let t = &tokens[idx];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {}
            },
            TokenKind::Attr { .. } => continue, // attrs don't affect position
            _ => {}
        }
        if brace == 1
            && paren == 0
            && t.kind == TokenKind::Ident
            && t.text.chars().next().is_some_and(char::is_uppercase)
            && matches!(prev_sig.as_deref(), Some("{" | ","))
        {
            variants.push((t.text.clone(), t.line, t.col));
        }
        prev_sig = Some(t.text.clone());
    }
    variants
}

/// Identifiers appearing inside the test regions of `check.rs`, normalised.
fn check_coverage_idents(tokens: &[Token]) -> (Vec<String>, bool) {
    let regions = test_regions(tokens);
    let mut idents = Vec::new();
    let mut has_grad_check = false;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident && in_regions(&regions, i) {
            if t.text == "grad_check" {
                has_grad_check = true;
            }
            idents.push(normalize(&t.text));
        }
    }
    (idents, has_grad_check)
}

/// Runs R1 given the two relevant token streams. Findings anchor at the
/// variant declaration in `op.rs`, so an inline allow there suppresses them.
fn rule_op_coverage(
    op_tokens: &[Token],
    check_tokens: Option<&[Token]>,
    findings: &mut Vec<Finding>,
) {
    let variants = op_variants(op_tokens);
    let (covered, has_grad_check) =
        check_tokens.map(check_coverage_idents).unwrap_or_default();
    for (name, line, col) in variants {
        let ok = has_grad_check && covered.contains(&normalize(&name));
        if !ok {
            findings.push(Finding {
                file: OP_PATH.to_string(),
                line,
                col,
                rule: "op-coverage",
                message: format!(
                    "Op::{name} has no grad_check coverage in {CHECK_PATH}; \
                     add a finite-difference test or an inline allow with a reason"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Lints a set of files and returns every unsuppressed finding, sorted by
/// file, line, column.
///
/// The cross-file `op-coverage` rule runs when the set contains
/// [`OP_PATH`]; its findings are suppressible by allow comments in that
/// file like any other finding.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut op_tokens: Option<Vec<Token>> = None;
    let mut check_tokens: Option<Vec<Token>> = None;
    let mut op_allows: Vec<Allow> = Vec::new();

    for file in files {
        let tokens = match lex(&file.src) {
            Ok(t) => t,
            Err(e) => {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: e.line,
                    col: e.col,
                    rule: "lex-error",
                    message: e.message,
                });
                continue;
            }
        };
        let mut raw = Vec::new();
        let allows = collect_allows(&file.path, &tokens, &mut raw);
        let ctx = FileCtx {
            path: &file.path,
            code: code_tokens(&tokens),
            regions: test_regions(&tokens),
            test_file: is_test_path(&file.path),
            example: is_example_path(&file.path),
            bin: is_bin_path(&file.path),
            tokens: &tokens,
        };
        rule_no_panic_lib(&ctx, &mut raw);
        rule_env_centralization(&ctx, &mut raw);
        rule_no_println_lib(&ctx, &mut raw);
        rule_float_eq(&ctx, &mut raw);
        findings.extend(raw.into_iter().filter(|f| !suppressed(&allows, f)));

        if file.path == OP_PATH {
            op_allows = allows;
            op_tokens = Some(tokens);
        } else if file.path == CHECK_PATH {
            check_tokens = Some(tokens);
        }
    }

    if let Some(op) = &op_tokens {
        let mut raw = Vec::new();
        rule_op_coverage(op, check_tokens.as_deref(), &mut raw);
        findings.extend(raw.into_iter().filter(|f| !suppressed(&op_allows, f)));
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    findings
}
