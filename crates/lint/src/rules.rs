//! The repo-specific rule set and the engine that applies it.
//!
//! Token-local rules operate on the token stream produced by
//! [`crate::lexer`], so string literals, comments and doc examples can never
//! trip them. Interprocedural rules (`panic-path`, `lossy-cast`,
//! `unused-result`) run on the AST from [`crate::parser`] and the workspace
//! call graph from [`crate::graph`]. Each finding is anchored to a
//! `file:line:col` and carries its rule id.
//!
//! Suppression comes in three scopes, all requiring a reason:
//!
//! * `// cmr-lint: allow(rule-id) reason` — same line or the line directly
//!   below; on a `fn` declaration an `allow(panic-path)` makes the fn a
//!   *barrier* (documented panic, never taints callers).
//! * `// cmr-lint: allow-file(rule-id) reason` — whole file; meant for
//!   kernel-dense files where per-line indexing allows would drown the code.
//! * An allow that suppresses nothing is itself a finding (`stale-allow`),
//!   so the exemption inventory shrinks as code is hardened.
//!
//! | id | what it enforces |
//! |----|------------------|
//! | `op-coverage` | every `Op` variant in `crates/tensor/src/op.rs` has a `grad_check` test in `check.rs` |
//! | `no-panic-lib` | no `unwrap()/expect()/panic!/todo!/unimplemented!` in non-test library code |
//! | `env-centralization` | `env::var` only in `crates/tensor/src/threading.rs`, `crates/obs/src/lib.rs`, `crates/serve/src/config.rs` and `crates/bench` |
//! | `no-println-lib` | no `println!/eprintln!/dbg!` outside `crates/bench`, binaries, examples, tests |
//! | `float-eq` | no `==`/`!=` against non-zero float literals — use a tolerance helper |
//! | `panic-path` | no `pub` library fn may transitively reach an undefused panic |
//! | `lossy-cast` | no narrowing/sign-changing/truncating `as` cast unless provably in range |
//! | `unused-result` | no discarding a workspace `Result` via `let _ =` or a bare statement |
//! | `untrusted-length` | no network/disk-derived value may reach an allocation/length sink unsanitized |
//! | `untrusted-index` | no network/disk-derived value may reach an index/range sink unsanitized |
//! | `stale-allow` | no allow directive that suppresses zero findings |

// cmr-lint: allow-file(panic-path) token indices come from the lexer that produced the buffer; bounds hold by construction

use crate::graph::{self, FileUnit, PanicAllows};
use crate::lexer::{lex, Token, TokenKind};
use crate::locks;
use crate::taint;
use crate::parser::{self, CastSite, CastSrc, FnDef, ParsedFile};
use std::cell::Cell;
use std::collections::BTreeMap;

/// Every rule id with a one-line description (drives `--help` and the
/// unknown-rule check on allow comments).
pub const RULES: &[(&str, &str)] = &[
    ("op-coverage", "every Op enum variant needs a grad_check test in crates/tensor/src/check.rs"),
    ("no-panic-lib", "unwrap()/expect()/panic!/todo!/unimplemented! banned in non-test library code"),
    ("env-centralization", "std::env::var only in crates/tensor/src/threading.rs, crates/obs/src/lib.rs (CMR_OBS), crates/serve/src/config.rs (CMR_SERVE_*, CMR_IVF_NPROBE) and crates/bench"),
    ("no-println-lib", "println!/eprintln!/dbg! banned outside crates/bench, binaries, examples, tests"),
    ("float-eq", "direct ==/!= against a non-zero float literal; compare with a tolerance instead"),
    ("panic-path", "a pub library fn transitively reaches an undefused panic (witness chain reported)"),
    ("lossy-cast", "narrowing, sign-changing or truncating `as` cast that is not provably in range"),
    ("unused-result", "a workspace Result discarded via `let _ =` or a bare call statement"),
    ("lock-order", "a cycle in the acquired-while-holding lock graph; potential deadlock (all interleaved chains reported)"),
    ("blocking-under-lock", "I/O, sleep, join, channel op or a second workspace-lock acquisition while a guard is live"),
    ("condvar-discipline", "Condvar::wait outside a predicate-rechecking loop, or notify without the paired mutex held"),
    ("untrusted-length", "a network/disk-derived value reaches Vec::with_capacity/reserve/set_len or a vec![…; n] length unsanitized"),
    ("untrusted-index", "a network/disk-derived value reaches a slice index, range or split_at unsanitized"),
    ("stale-allow", "an allow directive that suppresses zero findings; delete it"),
    ("allow-missing-reason", "a cmr-lint allow comment must carry a reason after the rule id"),
    ("allow-unknown-rule", "a cmr-lint allow comment names a rule id that does not exist"),
    ("lex-error", "the file could not be lexed (unterminated literal or comment)"),
];

/// Path of the operator enum R1 audits.
pub const OP_PATH: &str = "crates/tensor/src/op.rs";
/// Path of the gradient-check suite R1 audits against.
pub const CHECK_PATH: &str = "crates/tensor/src/check.rs";

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Repo-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the canonical `file:line:col [rule] message`
    /// form.
    pub fn render(&self) -> String {
        format!("{}:{}:{} [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// A source file handed to the engine.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Full file contents.
    pub src: String,
}

/// Scope of an allow directive.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AllowScope {
    /// `allow(rule)`: own line plus the line directly below.
    Line,
    /// `allow-file(rule)`: the whole file.
    File,
}

/// A parsed, valid allow directive with usage tracking for `stale-allow`.
struct Allow {
    rule: String,
    line: u32,
    col: u32,
    scope: AllowScope,
    used: Cell<bool>,
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

fn has_component(path: &str, comp: &str) -> bool {
    path.split('/').any(|c| c == comp)
}

fn is_test_path(path: &str) -> bool {
    has_component(path, "tests") || has_component(path, "benches")
}

fn is_example_path(path: &str) -> bool {
    has_component(path, "examples")
}

fn is_bin_path(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("/main.rs") || path == "src/main.rs"
}

fn is_bench_crate(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

/// Sanctioned `env::var` sites: the `CMR_NUM_THREADS` knob in the
/// threading module, the `CMR_OBS` knob in the obs crate root, the
/// serving knobs (`CMR_SERVE_BATCH`, `CMR_SERVE_WAIT_US`, the
/// scatter-gather knobs `CMR_SERVE_SHARDS`, `CMR_SERVE_DEADLINE_US`,
/// `CMR_SERVE_RETRIES`, `CMR_SERVE_HEDGE_US`, and the IVF probe-width
/// knob `CMR_IVF_NPROBE`) in the serve config
/// module, and the experiment harness. Router/shard/breaker code must
/// take its tuning from `ServeConfig`, never from the environment
/// directly.
fn env_var_allowed(path: &str) -> bool {
    path == "crates/tensor/src/threading.rs"
        || path == "crates/obs/src/lib.rs"
        || path == "crates/serve/src/config.rs"
        || is_bench_crate(path)
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Does an attribute token mark the following item as test-only?
/// Matches `#[test]` and any `#[cfg(…test…)]` that is not `not(test)`.
fn attr_is_test(text: &str) -> bool {
    parser::attr_is_test(text)
}

/// Token-index ranges (inclusive start, exclusive end) covered by test-only
/// items: a `#[test]`/`#[cfg(test)]` attribute followed by a braced item.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if let TokenKind::Attr { inner: false } = t.kind {
            if attr_is_test(&t.text) {
                // Find the item's opening brace; a `;` first means the item
                // has no body (e.g. `#[cfg(test)] use …;` / `mod tests;`).
                let mut j = i + 1;
                let mut open = None;
                while j < tokens.len() {
                    let u = &tokens[j];
                    if u.is_punct("{") {
                        open = Some(j);
                        break;
                    }
                    if u.is_punct(";") {
                        break;
                    }
                    j += 1;
                }
                if let Some(start) = open {
                    let mut depth = 0isize;
                    let mut k = start;
                    while k < tokens.len() {
                        if tokens[k].is_punct("{") {
                            depth += 1;
                        } else if tokens[k].is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    regions.push((i, (k + 1).min(tokens.len())));
                    i = k + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

// ---------------------------------------------------------------------------
// Allow-comment parsing
// ---------------------------------------------------------------------------

fn comment_body(text: &str) -> &str {
    let t = text.trim_start();
    if let Some(rest) = t.strip_prefix("//") {
        rest.trim_start_matches(['/', '!']).trim()
    } else if let Some(rest) = t.strip_prefix("/*") {
        rest.trim_start_matches(['*', '!']).trim_end_matches("*/").trim()
    } else {
        t
    }
}

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|&(r, _)| r == id)
}

/// Extracts allow directives from comment tokens; malformed directives
/// become findings instead of silently suppressing anything.
fn collect_allows(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let body = comment_body(&t.text);
        let Some(directive) = body.strip_prefix("cmr-lint:") else { continue };
        let directive = directive.trim();
        let mut fail = |rule: &'static str, message: String| {
            findings.push(Finding { file: path.to_string(), line: t.line, col: t.col, rule, message });
        };
        // `trust(reason)`: the taint-pass escape hatch — suppresses an
        // `untrusted-length`/`untrusted-index` flow on its line (or the
        // line below) and is stale-allow accounted like any other allow.
        if let Some(rest) = directive.strip_prefix("trust(") {
            let Some(close) = rest.rfind(')') else {
                fail("allow-unknown-rule", "unclosed `trust(` in cmr-lint directive".to_string());
                continue;
            };
            if rest[..close].trim().is_empty() {
                fail(
                    "allow-missing-reason",
                    "trust() has no reason; write `// cmr-lint: trust(<why this value is bounded>)`"
                        .to_string(),
                );
                continue;
            }
            allows.push(Allow {
                rule: "trust".to_string(),
                line: t.line,
                col: t.col,
                scope: AllowScope::Line,
                used: Cell::new(false),
            });
            continue;
        }
        let (scope, rest) = if let Some(rest) = directive.strip_prefix("allow-file(") {
            (AllowScope::File, rest)
        } else if let Some(rest) = directive.strip_prefix("allow(") {
            (AllowScope::Line, rest)
        } else {
            fail(
                "allow-unknown-rule",
                format!(
                    "malformed cmr-lint directive {directive:?}: expected \
                     `allow(rule-id) reason` or `allow-file(rule-id) reason`"
                ),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("allow-unknown-rule", "unclosed `allow(` in cmr-lint directive".to_string());
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim();
        if !known_rule(&rule) {
            fail("allow-unknown-rule", format!("allow names unknown rule {rule:?}"));
            continue;
        }
        if reason.is_empty() {
            fail(
                "allow-missing-reason",
                format!("allow({rule}) has no reason; write `// cmr-lint: allow({rule}) <why>`"),
            );
            continue;
        }
        allows.push(Allow { rule, line: t.line, col: t.col, scope, used: Cell::new(false) });
    }
    allows
}

/// A finding is suppressed by a valid allow for its rule on the same line,
/// on the line directly above (a stand-alone allow comment), or anywhere in
/// the file for an `allow-file`. Every matching allow is marked *used* so
/// `stale-allow` can flag the rest.
fn suppress(allows: &[Allow], finding: &Finding) -> bool {
    let mut hit = false;
    for a in allows {
        let matches = a.rule == finding.rule
            && match a.scope {
                AllowScope::Line => a.line == finding.line || a.line + 1 == finding.line,
                AllowScope::File => true,
            };
        if matches {
            a.used.set(true);
            hit = true;
        }
    }
    hit
}

// ---------------------------------------------------------------------------
// Per-file token rules
// ---------------------------------------------------------------------------

/// Banned `.method()` calls for `no-panic-lib`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Banned macros for `no-panic-lib`.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
/// Banned macros for `no-println-lib`.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "dbg"];

fn code_tokens(tokens: &[Token]) -> Vec<usize> {
    (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect()
}

struct FileCtx<'a> {
    path: &'a str,
    tokens: &'a [Token],
    /// Indices into `tokens` of non-comment tokens, in order.
    code: Vec<usize>,
    regions: Vec<(usize, usize)>,
    test_file: bool,
    example: bool,
    bin: bool,
}

impl<'a> FileCtx<'a> {
    fn exempt_panic(&self, tok_idx: usize) -> bool {
        self.test_file
            || self.example
            || self.bin
            || in_regions(&self.regions, tok_idx)
    }

    fn exempt_print(&self, tok_idx: usize) -> bool {
        self.exempt_panic(tok_idx) || is_bench_crate(self.path)
    }

    fn finding(&self, tok: &Token, rule: &'static str, message: String) -> Finding {
        Finding { file: self.path.to_string(), line: tok.line, col: tok.col, rule, message }
    }
}

fn rule_no_panic_lib(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.exempt_panic(i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = ci.checked_sub(1).map(|p| &ctx.tokens[ctx.code[p]]);
        let next = ctx.code.get(ci + 1).map(|&n| &ctx.tokens[n]);
        if PANIC_METHODS.contains(&t.text.as_str())
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("("))
        {
            findings.push(ctx.finding(
                t,
                "no-panic-lib",
                format!(".{}() can panic; return a typed error instead", t.text),
            ));
        }
        if PANIC_MACROS.contains(&t.text.as_str()) && next.is_some_and(|n| n.is_punct("!")) {
            findings.push(ctx.finding(
                t,
                "no-panic-lib",
                format!("{}! in library code; return a typed error instead", t.text),
            ));
        }
    }
}

fn rule_env_centralization(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if env_var_allowed(ctx.path) {
        return;
    }
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.test_file || in_regions(&ctx.regions, i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if !(t.is_ident("var") || t.is_ident("var_os")) {
            continue;
        }
        let Some(p1) = ci.checked_sub(1).map(|p| &ctx.tokens[ctx.code[p]]) else { continue };
        let Some(p2) = ci.checked_sub(2).map(|p| &ctx.tokens[ctx.code[p]]) else { continue };
        if p1.is_punct("::") && p2.is_ident("env") {
            findings.push(ctx.finding(
                t,
                "env-centralization",
                "env::var outside crates/tensor/src/threading.rs, crates/obs/src/lib.rs, \
                 crates/serve/src/config.rs and crates/bench; route runtime knobs through \
                 those modules"
                    .to_string(),
            ));
        }
    }
}

fn rule_no_println_lib(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.exempt_print(i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && ctx.code.get(ci + 1).is_some_and(|&n| ctx.tokens[n].is_punct("!"))
        {
            findings.push(ctx.finding(
                t,
                "no-println-lib",
                format!("{}! in library code; only crates/bench, binaries and tests may print", t.text),
            ));
        }
    }
}

/// Is a float-literal token the literal zero (`0.0`, `0.`, `0e0`, with an
/// optional `f32`/`f64` suffix)? Comparing against exact zero is the
/// sparsity/norm-guard idiom and allowed by construction.
fn float_literal_is_zero(text: &str) -> bool {
    let t = text.trim_end_matches("f32").trim_end_matches("f64").trim_end_matches('_');
    let mantissa = t.split(['e', 'E']).next().unwrap_or(t);
    !mantissa.is_empty() && mantissa.chars().all(|c| matches!(c, '0' | '.' | '_'))
}

fn rule_float_eq(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (ci, &i) in ctx.code.iter().enumerate() {
        if ctx.test_file || ctx.example || in_regions(&ctx.regions, i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let float_at = |cj: Option<usize>| -> Option<&Token> {
            cj.and_then(|p| ctx.code.get(p))
                .map(|&n| &ctx.tokens[n])
                .filter(|tok| tok.kind == TokenKind::Float)
        };
        let sides = [float_at(ci.checked_sub(1)), float_at(Some(ci + 1))];
        let lits: Vec<&Token> = sides.into_iter().flatten().collect();
        if !lits.is_empty() && !lits.iter().all(|tok| float_literal_is_zero(&tok.text)) {
            findings.push(ctx.finding(
                t,
                "float-eq",
                format!("`{}` against a float literal; compare with a tolerance helper", t.text),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// lossy-cast (AST rule)
// ---------------------------------------------------------------------------

/// Bit width and signedness of an integer type tail.
fn int_info(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "i8" => (8, true),
        "i16" => (16, true),
        "i32" => (32, true),
        "i64" => (64, true),
        "i128" => (128, true),
        "isize" => (64, true),
        "u8" => (8, false),
        "u16" => (16, false),
        "u32" => (32, false),
        "u64" => (64, false),
        "u128" => (128, false),
        "usize" => (64, false),
        _ => return None,
    })
}

/// Mantissa precision (exactly-representable integer bits) of a float type.
fn float_mantissa(ty: &str) -> Option<u32> {
    match ty {
        "f32" => Some(24),
        "f64" => Some(53),
        _ => None,
    }
}

/// Inclusive integer range of an integer type (u128 clamped to `i128::MAX`).
fn int_range(ty: &str) -> Option<(i128, i128)> {
    let (bits, signed) = int_info(ty)?;
    Some(if signed {
        if bits >= 128 {
            (i128::MIN, i128::MAX)
        } else {
            (-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1)
        }
    } else if bits >= 127 {
        (0, i128::MAX)
    } else {
        (0, (1i128 << bits) - 1)
    })
}

/// Why a `src as dst` cast is lossy, or `None` when it is value-preserving
/// (or unknowable — an unresolved source type is deliberately silent, the
/// documented under-approximation of a first-party analyzer).
///
/// Policy notes: `usize`/`u64 as f64` is *not* flagged — index and length
/// magnitudes in this workspace are far below 2^53 and flagging them would
/// bury the signal; `as f32` *is* flagged for >24-bit sources because tensor
/// payloads are f32 and those casts sit on real data paths.
fn cast_lossiness(src: &CastSrc, src_ty: Option<&str>, dst: &str) -> Option<String> {
    match src {
        CastSrc::IntLit(v) => {
            if let Some((lo, hi)) = int_range(dst) {
                return (*v < lo || *v > hi)
                    .then(|| format!("literal {v} is out of range for {dst}"));
            }
            if let Some(m) = float_mantissa(dst) {
                let exact = 1i128 << m;
                return (v.abs() > exact)
                    .then(|| format!("literal {v} is not exactly representable in {dst}"));
            }
            None
        }
        CastSrc::FloatLit => int_info(dst)
            .map(|_| format!("float literal truncated by `as {dst}`; write the integer directly")),
        CastSrc::Ty(_) | CastSrc::Unknown => {
            let s = src_ty?;
            if s == dst {
                return None;
            }
            if let (Some((sb, ss)), Some((db, ds))) = (int_info(s), int_info(dst)) {
                if db < sb {
                    return Some(format!("narrowing {s} → {dst} can truncate"));
                }
                if ss && !ds {
                    return Some(format!("{s} → {dst} loses the sign"));
                }
                if !ss && ds && db <= sb {
                    return Some(format!("{s} → {dst} can overflow the sign bit"));
                }
                return None;
            }
            if let (Some(sb), Some(m)) = (int_info(s).map(|(b, _)| b), float_mantissa(dst)) {
                // int → float: only int → f32 from wide sources is on a real
                // precision cliff (tensor payloads); int → f64 is exempt.
                return (dst == "f32" && sb > m)
                    .then(|| format!("{s} → f32 loses precision above 2^24"));
            }
            if float_mantissa(s).is_some() && int_info(dst).is_some() {
                return Some(format!("{s} → {dst} truncates toward zero"));
            }
            if s == "f64" && dst == "f32" {
                return Some("f64 → f32 halves the mantissa".to_string());
            }
            None
        }
    }
}

/// Resolves the source type tail of a cast whose operand was an identifier
/// (or `recv.field`) using the fn's typed locals/params and the workspace
/// struct-field map.
fn resolve_cast_src_ty<'a>(
    cast: &'a CastSite,
    def: &FnDef,
    krate: &str,
    fields: &'a BTreeMap<(String, String), BTreeMap<String, String>>,
) -> Option<String> {
    let CastSrc::Ty(t) = &cast.src else { return None };
    let Some(rest) = t.strip_prefix("?ident:") else { return Some(t.clone()) };
    if rest.is_empty() {
        return None;
    }
    if let Some((base, field)) = rest.split_once('.') {
        let base_ty = if base == "self" {
            def.self_ty.clone()
        } else {
            graph::local_type(def, base, cast.line)
        }?;
        return fields.get(&(krate.to_string(), base_ty)).and_then(|m| m.get(field)).cloned();
    }
    graph::local_type(def, rest, cast.line)
}

fn rule_lossy_cast(
    path: &str,
    parsed: &ParsedFile,
    fields: &BTreeMap<(String, String), BTreeMap<String, String>>,
    findings: &mut Vec<Finding>,
) {
    if is_test_path(path) || is_example_path(path) {
        return;
    }
    let krate = graph::crate_of(path);
    for def in &parsed.fns {
        if def.is_test {
            continue;
        }
        let Some(body) = &def.body else { continue };
        for cast in &body.casts {
            let src_ty = resolve_cast_src_ty(cast, def, &krate, fields);
            if let Some(why) = cast_lossiness(&cast.src, src_ty.as_deref(), &cast.dst) {
                findings.push(Finding {
                    file: path.to_string(),
                    line: cast.line,
                    col: cast.col,
                    rule: "lossy-cast",
                    message: format!("{why}; prove the range or carry a reasoned allow"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R1: op-coverage (cross-file)
// ---------------------------------------------------------------------------

/// `MatMulTransB` and `matmul_transb` both normalise to `matmultransb`,
/// which is what makes variant↔builder-method matching robust to the
/// repo's `matmul` (not `mat_mul`) naming.
fn normalize(name: &str) -> String {
    name.chars().filter(|&c| c != '_').collect::<String>().to_lowercase()
}

/// Extracts the variant names (with positions) of `pub enum Op { … }`.
fn op_variants(tokens: &[Token]) -> Vec<(String, u32, u32)> {
    let code = code_tokens(tokens);
    let mut variants = Vec::new();
    let mut ci = 0usize;
    // Find `enum Op {`.
    let mut body_start = None;
    while ci + 2 < code.len() {
        if tokens[code[ci]].is_ident("enum")
            && tokens[code[ci + 1]].is_ident("Op")
            && tokens[code[ci + 2]].is_punct("{")
        {
            body_start = Some(ci + 3);
            break;
        }
        ci += 1;
    }
    let Some(start) = body_start else { return variants };
    let mut brace = 1isize;
    let mut paren = 0isize;
    let mut prev_sig: Option<String> = Some("{".to_string());
    for &idx in &code[start..] {
        let t = &tokens[idx];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {}
            },
            TokenKind::Attr { .. } => continue, // attrs don't affect position
            _ => {}
        }
        if brace == 1
            && paren == 0
            && t.kind == TokenKind::Ident
            && t.text.chars().next().is_some_and(char::is_uppercase)
            && matches!(prev_sig.as_deref(), Some("{" | ","))
        {
            variants.push((t.text.clone(), t.line, t.col));
        }
        prev_sig = Some(t.text.clone());
    }
    variants
}

/// Identifiers appearing inside the test regions of `check.rs`, normalised.
fn check_coverage_idents(tokens: &[Token]) -> (Vec<String>, bool) {
    let regions = test_regions(tokens);
    let mut idents = Vec::new();
    let mut has_grad_check = false;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident && in_regions(&regions, i) {
            if t.text == "grad_check" {
                has_grad_check = true;
            }
            idents.push(normalize(&t.text));
        }
    }
    (idents, has_grad_check)
}

/// Runs R1 given the two relevant token streams. Findings anchor at the
/// variant declaration in `op.rs`, so an inline allow there suppresses them.
fn rule_op_coverage(
    op_tokens: &[Token],
    check_tokens: Option<&[Token]>,
    findings: &mut Vec<Finding>,
) {
    let variants = op_variants(op_tokens);
    let (covered, has_grad_check) =
        check_tokens.map(check_coverage_idents).unwrap_or_default();
    for (name, line, col) in variants {
        let ok = has_grad_check && covered.contains(&normalize(&name));
        if !ok {
            findings.push(Finding {
                file: OP_PATH.to_string(),
                line,
                col,
                rule: "op-coverage",
                message: format!(
                    "Op::{name} has no grad_check coverage in {CHECK_PATH}; \
                     add a finite-difference test or an inline allow with a reason"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Full analysis result: findings plus the call graph and allow statistics
/// that drive the report summary and `CALLGRAPH.json`.
pub struct Analysis {
    /// Every unsuppressed finding, sorted by file, line, column.
    pub findings: Vec<Finding>,
    /// Files handed to the engine.
    pub files_scanned: usize,
    /// Valid allow directives seen.
    pub allows_total: usize,
    /// Allow directives that suppressed or defused at least one thing.
    pub allows_used: usize,
    /// The workspace call graph (panic propagation already run).
    pub graph: graph::Graph,
    /// The concurrency pass result (lock inventory, order edges, cycles).
    pub locks: locks::LockAnalysis,
    /// The taint pass result (source/sink/sanitizer inventory, flows).
    pub taint: taint::TaintAnalysis,
}

/// Lints a set of files and returns every unsuppressed finding, sorted by
/// file, line, column. Thin wrapper over [`analyze`].
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    analyze(files).findings
}

/// Runs the full pipeline: lex, token rules, parse, lossy-cast, call-graph
/// build + panic propagation, panic-path / unused-result findings,
/// op-coverage, and finally stale-allow over the whole allow inventory.
///
/// The cross-file `op-coverage` rule runs when the set contains
/// [`OP_PATH`]; its findings are suppressible by allow comments in that
/// file like any other finding.
pub fn analyze(files: &[SourceFile]) -> Analysis {
    let mut findings = Vec::new();
    let mut tokens_by_file: Vec<Option<Vec<Token>>> = Vec::with_capacity(files.len());
    let mut allows_by_file: Vec<Vec<Allow>> = Vec::with_capacity(files.len());
    let mut by_path: BTreeMap<&str, usize> = BTreeMap::new();

    // ---- lex + allows + token rules ----
    for (fi, file) in files.iter().enumerate() {
        by_path.insert(&file.path, fi);
        let tokens = match lex(&file.src) {
            Ok(t) => t,
            Err(e) => {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: e.line,
                    col: e.col,
                    rule: "lex-error",
                    message: e.message,
                });
                tokens_by_file.push(None);
                allows_by_file.push(Vec::new());
                continue;
            }
        };
        let mut raw = Vec::new();
        let allows = collect_allows(&file.path, &tokens, &mut raw);
        let ctx = FileCtx {
            path: &file.path,
            code: code_tokens(&tokens),
            regions: test_regions(&tokens),
            test_file: is_test_path(&file.path),
            example: is_example_path(&file.path),
            bin: is_bin_path(&file.path),
            tokens: &tokens,
        };
        rule_no_panic_lib(&ctx, &mut raw);
        rule_env_centralization(&ctx, &mut raw);
        rule_no_println_lib(&ctx, &mut raw);
        rule_float_eq(&ctx, &mut raw);
        findings.extend(raw.into_iter().filter(|f| !suppress(&allows, f)));
        tokens_by_file.push(Some(tokens));
        allows_by_file.push(allows);
    }

    // ---- parse ----
    let parsed_by_file: Vec<Option<ParsedFile>> = tokens_by_file
        .iter()
        .map(|t| t.as_ref().map(|toks| parser::parse(toks)))
        .collect();

    // ---- struct-field map for cast-source typing ----
    let mut fields: BTreeMap<(String, String), BTreeMap<String, String>> = BTreeMap::new();
    for (fi, parsed) in parsed_by_file.iter().enumerate() {
        let Some(p) = parsed else { continue };
        let krate = graph::crate_of(&files[fi].path);
        for st in &p.structs {
            let entry = fields.entry((krate.clone(), st.name.clone())).or_default();
            for (f, t) in &st.fields {
                entry.entry(f.clone()).or_insert_with(|| t.clone());
            }
        }
    }

    // ---- lossy-cast ----
    for (fi, parsed) in parsed_by_file.iter().enumerate() {
        let Some(p) = parsed else { continue };
        let mut raw = Vec::new();
        rule_lossy_cast(&files[fi].path, p, &fields, &mut raw);
        findings.extend(raw.into_iter().filter(|f| !suppress(&allows_by_file[fi], f)));
    }

    // ---- call graph + panic propagation ----
    let mut panic_allows: BTreeMap<String, PanicAllows> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        let mut pa = PanicAllows::default();
        for a in &allows_by_file[fi] {
            match a.scope {
                AllowScope::Line if a.rule == "panic-path" || a.rule == "no-panic-lib" => {
                    pa.lines.insert(a.line);
                }
                AllowScope::File if a.rule == "panic-path" => pa.file_scope = true,
                _ => {}
            }
        }
        if !pa.lines.is_empty() || pa.file_scope {
            panic_allows.insert(file.path.clone(), pa);
        }
    }
    let units: Vec<FileUnit> = files
        .iter()
        .zip(parsed_by_file.iter())
        .filter_map(|(file, parsed)| {
            parsed.as_ref().map(|p| FileUnit {
                path: &file.path,
                parsed: p,
                in_lib: !is_test_path(&file.path)
                    && !is_example_path(&file.path)
                    && !is_bin_path(&file.path),
            })
        })
        .collect();
    let g = graph::build(&units, &panic_allows);

    // ---- panic-path findings (suppression is the barrier/defuse system) ----
    for (i, node) in g.nodes.iter().enumerate() {
        if node.is_pub
            && node.in_lib
            && !node.is_test
            && node.barrier.is_none()
            && node.taint.is_some()
        {
            findings.push(Finding {
                file: node.file.clone(),
                line: node.line,
                col: node.col,
                rule: "panic-path",
                message: format!("pub fn can reach a panic: {}", g.chain_of(i)),
            });
        }
    }

    // ---- unused-result findings ----
    for d in &g.discarded_results {
        let caller = &g.nodes[d.caller];
        if caller.is_test || is_example_path(&d.file) || is_test_path(&d.file) {
            continue;
        }
        let f = Finding {
            file: d.file.clone(),
            line: d.line,
            col: d.col,
            rule: "unused-result",
            message: format!(
                "Result of `{}` is discarded; handle the error or carry a reasoned allow",
                d.callee_name
            ),
        };
        let fi = by_path.get(d.file.as_str()).copied();
        if fi.is_none_or(|fi| !suppress(&allows_by_file[fi], &f)) {
            findings.push(f);
        }
    }

    // ---- op-coverage ----
    if let Some(&op_fi) = by_path.get(OP_PATH) {
        if let Some(op_tokens) = &tokens_by_file[op_fi] {
            let check_tokens = by_path
                .get(CHECK_PATH)
                .and_then(|&fi| tokens_by_file[fi].as_deref());
            let mut raw = Vec::new();
            rule_op_coverage(op_tokens, check_tokens, &mut raw);
            findings
                .extend(raw.into_iter().filter(|f| !suppress(&allows_by_file[op_fi], f)));
        }
    }

    // ---- mark graph-used allows (site defuses and load-bearing barriers) ----
    for (file, line) in &g.used_allow_lines {
        let Some(&fi) = by_path.get(file.as_str()) else { continue };
        for a in &allows_by_file[fi] {
            if a.scope == AllowScope::Line
                && a.line == *line
                && (a.rule == "panic-path" || a.rule == "no-panic-lib")
            {
                a.used.set(true);
            }
        }
    }
    for file in &g.used_file_allows {
        let Some(&fi) = by_path.get(file.as_str()) else { continue };
        for a in &allows_by_file[fi] {
            if a.scope == AllowScope::File && a.rule == "panic-path" {
                a.used.set(true);
            }
        }
    }

    // ---- concurrency pass: lock-order / blocking-under-lock / condvar ----
    let mut conc_allows: BTreeMap<String, locks::ConcAllows> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        let mut ca = locks::ConcAllows::default();
        for a in &allows_by_file[fi] {
            match (a.scope, a.rule.as_str()) {
                (AllowScope::Line, "blocking-under-lock") => {
                    ca.blocking.insert(a.line);
                }
                (AllowScope::Line, "lock-order") => {
                    ca.order.insert(a.line);
                }
                (AllowScope::Line, "condvar-discipline") => {
                    ca.condvar.insert(a.line);
                }
                (AllowScope::File, "blocking-under-lock") => ca.blocking_file = true,
                (AllowScope::File, "lock-order") => ca.order_file = true,
                (AllowScope::File, "condvar-discipline") => ca.condvar_file = true,
                _ => {}
            }
        }
        if !ca.blocking.is_empty()
            || !ca.order.is_empty()
            || !ca.condvar.is_empty()
            || ca.blocking_file
            || ca.order_file
            || ca.condvar_file
        {
            conc_allows.insert(file.path.clone(), ca);
        }
    }
    let lock_analysis = locks::analyze(&units, &g, &conc_allows);
    // Sink already applied file/line allows — extend without re-filtering.
    findings.extend(lock_analysis.findings.iter().cloned());
    for (file, line, rule) in &lock_analysis.used_allow_lines {
        let Some(&fi) = by_path.get(file.as_str()) else { continue };
        for a in &allows_by_file[fi] {
            if a.scope == AllowScope::Line && a.line == *line && a.rule == *rule {
                a.used.set(true);
            }
        }
    }
    for (file, rule) in &lock_analysis.used_file_allows {
        let Some(&fi) = by_path.get(file.as_str()) else { continue };
        for a in &allows_by_file[fi] {
            if a.scope == AllowScope::File && a.rule == *rule {
                a.used.set(true);
            }
        }
    }

    // ---- taint pass: untrusted-length / untrusted-index ----
    let mut taint_allows: BTreeMap<String, taint::TaintAllows> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        let mut ta = taint::TaintAllows::default();
        for a in &allows_by_file[fi] {
            match (a.scope, a.rule.as_str()) {
                (AllowScope::Line, "trust" | "untrusted-length" | "untrusted-index") => {
                    ta.lines.push((a.line, a.rule.clone()));
                }
                (AllowScope::File, "untrusted-length" | "untrusted-index") => {
                    ta.file_rules.insert(a.rule.clone());
                }
                _ => {}
            }
        }
        if !ta.lines.is_empty() || !ta.file_rules.is_empty() {
            taint_allows.insert(file.path.clone(), ta);
        }
    }
    let taint_analysis = taint::analyze(&units, &g, &taint_allows);
    // Sink already applied file/line allows — extend without re-filtering.
    findings.extend(taint_analysis.findings.iter().cloned());
    for (file, line, rule) in &taint_analysis.used_allow_lines {
        let Some(&fi) = by_path.get(file.as_str()) else { continue };
        for a in &allows_by_file[fi] {
            if a.scope == AllowScope::Line && a.line == *line && a.rule == *rule {
                a.used.set(true);
            }
        }
    }
    for (file, rule) in &taint_analysis.used_file_allows {
        let Some(&fi) = by_path.get(file.as_str()) else { continue };
        for a in &allows_by_file[fi] {
            if a.scope == AllowScope::File && a.rule == *rule {
                a.used.set(true);
            }
        }
    }

    // ---- stale-allow ----
    let mut allows_total = 0usize;
    let mut allows_used = 0usize;
    for (fi, allows) in allows_by_file.iter().enumerate() {
        for a in allows {
            allows_total += 1;
            if a.used.get() {
                allows_used += 1;
            } else {
                let form = match a.scope {
                    AllowScope::Line => "allow",
                    AllowScope::File => "allow-file",
                };
                findings.push(Finding {
                    file: files[fi].path.clone(),
                    line: a.line,
                    col: a.col,
                    rule: "stale-allow",
                    message: format!(
                        "{form}({}) suppresses no findings; delete it or move it to the violation",
                        a.rule
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Analysis {
        findings,
        files_scanned: files.len(),
        allows_total,
        allows_used,
        graph: g,
        locks: lock_analysis,
        taint: taint_analysis,
    }
}
