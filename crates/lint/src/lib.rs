//! # cmr-lint
//!
//! First-party static analysis for this workspace. The build environment has
//! no crates.io access, so instead of clippy plugins or external linters the
//! repo carries its own: a hand-rolled Rust lexer ([`lexer`]) feeding a
//! recursive-descent parser ([`parser`]), a workspace-wide call graph with
//! transitive panic propagation ([`graph`]), and a repo-specific rule engine
//! ([`rules`]).
//!
//! The rules encode the conventions the reproduction's correctness rests on:
//!
//! * **op-coverage** — every autodiff operator must have a
//!   central-finite-difference gradient check, so new operators cannot ship
//!   untested;
//! * **no-panic-lib** — library crates return typed errors instead of
//!   panicking on untrusted input;
//! * **env-centralization** — runtime knobs stay discoverable in one place;
//! * **no-println-lib** — libraries don't write to stdio behind callers'
//!   backs;
//! * **float-eq** — float comparisons go through tolerance helpers (exact
//!   zero is allowed by construction);
//! * **panic-path** — no `pub` library fn may *transitively* reach an
//!   undefused panic (unwrap/assert/index three calls down still counts);
//!   findings carry the shortest witness chain;
//! * **lossy-cast** — narrowing/sign-changing/truncating `as` casts must be
//!   provably in range or carry a reasoned allow;
//! * **unused-result** — a workspace `Result` may not be discarded;
//! * **lock-order** — a cycle in the acquired-while-holding lock graph
//!   ([`locks`]) is a potential deadlock; every interleaved witness chain is
//!   reported;
//! * **blocking-under-lock** — no I/O, sleep, join, channel op or second
//!   workspace-lock acquisition while a guard is live;
//! * **condvar-discipline** — `Condvar::wait` must sit in a
//!   predicate-rechecking loop, and `notify` without the paired mutex held
//!   is flagged as advisory;
//! * **untrusted-length** / **untrusted-index** — interprocedural taint
//!   analysis ([`taint`]): bytes from the network, disk or environment may
//!   not reach `Vec::with_capacity`/`reserve`/`set_len`/`vec![…; n]` or a
//!   slice index/range/`split_at` without a dominating bounds check, a
//!   `.min`/`.clamp`/mask bound, or a reasoned `trust(…)` annotation;
//!   flows render to `TAINTGRAPH.json` with witness chains;
//! * **stale-allow** — an allow that suppresses nothing is itself a finding.
//!
//! Violations that are intentional carry an inline
//! `// cmr-lint: allow(rule-id) reason` comment (or a file-scope
//! `// cmr-lint: allow-file(rule-id) reason`); the reason is mandatory.
//! Taint flows additionally accept `// cmr-lint: trust(reason)` on or above
//! the sink line.
//!
//! Run it with `cargo run -p cmr-lint --release -- --workspace` (the
//! `scripts/verify.sh` gate does), add `--graph results/CALLGRAPH.json` for
//! the call-graph artifact, and see the README's "Static analysis" section
//! for the rule table and how to add a rule.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod graph;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

pub use rules::{analyze, run, Analysis, Finding, SourceFile};
