//! Rendering findings as text and as a machine-readable JSON report.
//!
//! The JSON report (`--json PATH`, normally `results/LINT_report.json`)
//! carries per-rule counts so successive PRs can diff finding totals.

use crate::rules::{Analysis, Finding, RULES};
use std::collections::BTreeMap;

/// Schema version stamped into `LINT_report.json` so downstream diffing
/// tools can detect format changes. v2 added the concurrency rule ids
/// (`lock-order`, `blocking-under-lock`, `condvar-discipline`) to `counts`;
/// v3 added the taint rule ids (`untrusted-length`, `untrusted-index`) and
/// the `elapsed_ms` wall-clock budget field.
pub const LINT_SCHEMA_VERSION: u32 = 3;

/// Canonical text output: one `file:line:col [rule] message` line per
/// finding, plus a summary line.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out.push_str(&format!(
        "cmr-lint: {} finding{} in {} file{} scanned\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
    ));
    out
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One-line machine-greppable summary of a full analysis: file/finding
/// counts, allow inventory, the workspace panic surface (pub lib fns that
/// can transitively reach an undefused panic), and the lock-order graph
/// health (edge and cycle counts).
pub fn render_summary(analysis: &Analysis) -> String {
    format!(
        "cmr-lint summary: files={} findings={} allows={} (used {}) panic-surface={} lock-edges={} lock-cycles={} taint-flows={} (unsanitized {})\n",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.allows_total,
        analysis.allows_used,
        analysis.graph.panic_surface(),
        analysis.locks.edges.len(),
        analysis.locks.cycles.len(),
        analysis.taint.flows.len(),
        analysis.taint.unsanitized(),
    )
}

/// Renders the JSON report: scanned-file count, elapsed wall-clock of the
/// full pass (the verify.sh lint-budget gate reads it), per-rule finding
/// counts (every rule listed, zero or not, so diffs are stable), and the
/// findings.
pub fn render_json(findings: &[Finding], files_scanned: usize, elapsed_ms: u64) -> String {
    let mut counts: BTreeMap<&str, usize> = RULES.iter().map(|&(r, _)| (r, 0)).collect();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {LINT_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"elapsed_ms\": {elapsed_ms},\n"));
    out.push_str(&format!("  \"total_findings\": {},\n", findings.len()));
    out.push_str("  \"counts\": {\n");
    let n = counts.len();
    for (i, (rule, count)) in counts.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            escape(rule),
            count,
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"findings\": [\n");
    let m = findings.len();
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            escape(&f.file),
            f.line,
            f.col,
            escape(f.rule),
            escape(&f.message),
            if i + 1 < m { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
