//! Property test: [`ShardedCache`] against a reference per-shard LRU
//! model under random get/insert workloads.
//!
//! The model routes keys with the same exposed [`fnv1a`] hash and keeps
//! each shard as a recency-ordered list (front = least recently used).
//! That is exactly the cache's stamp semantics: a hit refreshes the
//! entry's stamp, an insert stamps the (new or refreshed) entry last, a
//! miss advances the clock without reordering anything, and eviction
//! removes the minimum stamp — i.e. the front of the recency list.

use cmr_serve::cache::fnv1a;
use cmr_serve::ShardedCache;
use proptest::prelude::*;

/// Reference model: per-shard recency lists plus hit/miss counters.
struct ModelCache {
    shards: Vec<Vec<(Vec<u8>, String)>>,
    per_shard_cap: usize,
    hits: u64,
    misses: u64,
}

impl ModelCache {
    fn new(capacity: usize, shards: usize) -> Self {
        let shards = if capacity == 0 { 0 } else { shards };
        let per_shard_cap = if shards == 0 { 0 } else { capacity.div_ceil(shards) };
        ModelCache { shards: vec![Vec::new(); shards], per_shard_cap, hits: 0, misses: 0 }
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    fn get(&mut self, key: &[u8]) -> Option<String> {
        if self.shards.is_empty() {
            self.misses += 1;
            return None;
        }
        let idx = self.shard_of(key);
        let shard = &mut self.shards[idx];
        match shard.iter().position(|(k, _)| k == key) {
            Some(pos) => {
                let entry = shard.remove(pos);
                let value = entry.1.clone();
                shard.push(entry); // most recently used = back
                self.hits += 1;
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: &[u8], value: String) {
        if self.shards.is_empty() {
            return;
        }
        let idx = self.shard_of(key);
        let cap = self.per_shard_cap;
        let shard = &mut self.shards[idx];
        if let Some(pos) = shard.iter().position(|(k, _)| k == key) {
            shard.remove(pos);
        }
        shard.push((key.to_vec(), value));
        while shard.len() > cap {
            shard.remove(0); // front = least recently used
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }
}

/// One decoded workload step.
enum Op {
    Get(Vec<u8>),
    Insert(Vec<u8>, String),
}

/// Decodes a raw `(selector, key_id)` pair into an operation over a small
/// key space (small enough that collisions, refreshes and evictions all
/// actually happen within a run).
fn decode(selector: u8, key_id: u8) -> Op {
    // Two-byte keys spread better across FNV shard routing than one byte.
    let key = vec![key_id, key_id.wrapping_mul(31)];
    if selector % 2 == 0 {
        Op::Get(key)
    } else {
        Op::Insert(key.clone(), format!("v{key_id}:{selector}"))
    }
}

proptest! {
    /// Every get agrees with the model, per-shard occupancy never exceeds
    /// the advertised ceiling, and the hit/miss counters match exactly.
    #[test]
    fn cache_matches_reference_lru_model(
        capacity in 0usize..24,
        shards in 1usize..6,
        ops in proptest::collection::vec((0u8..=255, 0u8..40), 1usize..400),
    ) {
        let cache = ShardedCache::new(capacity, shards);
        let mut model = ModelCache::new(capacity, shards);
        prop_assert_eq!(cache.shard_count(), model.shards.len());
        prop_assert_eq!(cache.per_shard_capacity(), model.per_shard_cap);

        for &(selector, key_id) in &ops {
            match decode(selector, key_id) {
                Op::Get(key) => {
                    prop_assert_eq!(cache.get(&key), model.get(&key), "get {:?}", key);
                }
                Op::Insert(key, value) => {
                    cache.insert(&key, value.clone());
                    model.insert(&key, value);
                }
            }
            prop_assert!(
                cache.len() <= cache.shard_count() * cache.per_shard_capacity(),
                "advertised capacity ceiling exceeded"
            );
        }

        prop_assert_eq!(cache.len(), model.len(), "occupancy diverged from model");
        prop_assert_eq!(cache.stats(), (model.hits, model.misses), "hit/miss counters diverged");

        // Drain check: every key the model still holds must hit with the
        // model's value; every key it dropped must miss.
        for key_id in 0u8..40 {
            let key = vec![key_id, key_id.wrapping_mul(31)];
            prop_assert_eq!(cache.get(&key), model.get(&key), "post-run get {:?}", key);
        }
    }

    /// The shard router is stable and in range for arbitrary keys.
    #[test]
    fn shard_routing_is_deterministic(
        key in proptest::collection::vec(0u8..=255, 0usize..32),
        shards in 1usize..9,
    ) {
        let cache = ShardedCache::new(64, shards);
        let idx = cache.shard_index(&key);
        prop_assert!(idx < cache.shard_count());
        prop_assert_eq!(idx, cache.shard_index(&key));
        prop_assert_eq!(idx as u64, fnv1a(&key) % shards as u64);
    }
}
