//! The scatter-gather router: fan a query out to every shard, survive the
//! shards that fail.
//!
//! Per routed query, each shard gets (subject to its circuit breaker) an
//! independent task that connects over the plain worker HTTP protocol and
//! races a **deadline** against **bounded retries** (exponential backoff
//! with jitter) and an optional **hedged** second request for stragglers.
//! Whatever answered in time is re-based to global gallery indices and
//! merged with [`cmr_retrieval::merge_top_k`]; shards that did not answer
//! only narrow the candidate set — the response is marked degraded with a
//! coverage fraction instead of failing (see [`Routed`]). Only when *no*
//! shard answers does the query fail, with
//! [`ServeError::Unavailable`] (503).
//!
//! ## Byte identity when healthy
//!
//! With every shard healthy the rendered response is byte-identical to the
//! single-engine server's: shard similarities are bit-identical slices of
//! the global similarity row (each is an independent dot product), workers
//! render floats in shortest-roundtrip form which re-parses to the same
//! bits, the merge is the canonical [`cmr_retrieval::hit_order`] selection,
//! and a full-coverage [`Routed::render`] emits exactly
//! [`render_hits`]. `tests/serve_batching.rs` locks this down end to end.

use crate::breaker::{Admission, Breaker, BreakerConfig};
use crate::config::ServeConfig;
use crate::engine::{render_hits, Direction};
use crate::error::ServeError;
use crate::http::{self, Limits};
use crate::shard::ShardSpec;
use cmr_retrieval::knn::Hit;
use cmr_retrieval::merge_top_k;
use std::fmt::Write as _;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Router tuning; [`RouterConfig::from_serve`] lifts the env-backed knobs
/// out of a [`ServeConfig`].
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Total per-shard budget per query, across retries and hedges.
    pub deadline: Duration,
    /// Extra attempts after the first failure (0 = no retries).
    pub retries: u32,
    /// Delay before hedging a second concurrent attempt at a shard that
    /// has not answered; `Duration::ZERO` disables hedging.
    pub hedge_after: Duration,
    /// First-retry backoff; attempt `n` waits `backoff_base * 2^(n-1)` plus
    /// up to one `backoff_base` of jitter.
    pub backoff_base: Duration,
    /// Per-shard circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            deadline: Duration::from_millis(250),
            retries: 2,
            hedge_after: Duration::ZERO,
            backoff_base: Duration::from_millis(5),
            breaker: BreakerConfig::default(),
        }
    }
}

impl RouterConfig {
    /// Router tuning from the serving config (the four `CMR_SERVE_*`
    /// scatter-gather knobs); backoff and breaker keep their defaults.
    pub fn from_serve(cfg: &ServeConfig) -> Self {
        RouterConfig {
            deadline: cfg.deadline,
            retries: cfg.retries,
            hedge_after: cfg.hedge_after,
            ..RouterConfig::default()
        }
    }
}

/// One shard as the router sees it: its address plus its breaker.
struct Slot {
    spec: ShardSpec,
    breaker: Breaker,
}

struct RouterInner {
    slots: Vec<Slot>,
    dim: usize,
    cfg: RouterConfig,
    /// Counter feeding splitmix64 for backoff jitter.
    rng: AtomicU64,
}

/// A shard-aware scatter-gather query router. Cheap to clone (shared
/// state); every clone routes against the same breakers.
#[derive(Clone)]
pub struct Router {
    inner: Arc<RouterInner>,
}

/// A merged scatter-gather result plus its coverage accounting.
#[derive(Debug)]
pub struct Routed {
    /// Merged global top-k hits from the shards that answered.
    pub hits: Vec<Hit>,
    /// Shards that answered within the deadline.
    pub shards_ok: usize,
    /// Total shards in the fleet.
    pub shards_total: usize,
}

impl Routed {
    /// `true` when at least one shard did not contribute.
    pub fn degraded(&self) -> bool {
        self.shards_ok < self.shards_total
    }

    /// Fraction of shards that contributed, in `(0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.shards_ok as f64 / self.shards_total.max(1) as f64
    }

    /// Renders the response body. Full coverage emits exactly
    /// [`render_hits`] (the byte-identity contract with the single-engine
    /// path); a degraded result appends `degraded`/`coverage` fields.
    pub fn render(&self) -> String {
        let mut out = render_hits(&self.hits);
        if self.degraded() {
            out.pop(); // replace the closing '}' with the degraded suffix
            let _ = write!(
                out,
                ",\"degraded\":true,\"coverage\":{},\"shards_ok\":{},\"shards_total\":{}}}",
                self.coverage(),
                self.shards_ok,
                self.shards_total
            );
        }
        out
    }
}

impl Router {
    /// A router over `specs`, serving queries of dimensionality `dim`.
    pub fn new(specs: Vec<ShardSpec>, dim: usize, cfg: RouterConfig) -> Router {
        let slots = specs
            .into_iter()
            .map(|spec| Slot { spec, breaker: Breaker::new(cfg.breaker) })
            .collect();
        Router {
            inner: Arc::new(RouterInner {
                slots,
                dim,
                cfg,
                rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            }),
        }
    }

    /// Query dimensionality the fleet serves.
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Number of shards routed to.
    pub fn shards(&self) -> usize {
        self.inner.slots.len()
    }

    /// Number of shards whose breaker is currently open (readiness input).
    pub fn open_breakers(&self) -> usize {
        self.inner.slots.iter().filter(|s| s.breaker.is_open()).count()
    }

    /// Scatter-gathers one query (`body` = raw little-endian f32 bytes, as
    /// on the wire) across the fleet and merges the per-shard top-k.
    ///
    /// # Errors
    /// [`ServeError::Unavailable`] when no shard answered (every breaker
    /// open, or every attempt failed or timed out).
    pub fn search(
        &self,
        direction: Direction,
        k: usize,
        body: &[u8],
    ) -> Result<Routed, ServeError> {
        let total = self.inner.slots.len();
        let body: Arc<[u8]> = Arc::from(body);
        let (tx, rx) = mpsc::channel::<Result<Vec<Hit>, ServeError>>();
        let now = Instant::now();
        let mut dispatched = 0usize;
        for (i, slot) in self.inner.slots.iter().enumerate() {
            let admission = slot.breaker.admit_at(now);
            if admission == Admission::Reject {
                if cmr_obs::enabled() {
                    cmr_obs::counter_add(&format!("serve.router.shard.{i}.rejected"), 1);
                }
                continue;
            }
            dispatched += 1;
            let inner = Arc::clone(&self.inner);
            let tx = tx.clone();
            let body = Arc::clone(&body);
            let probe = admission == Admission::Probe;
            std::thread::spawn(move || {
                let _ = tx.send(shard_query(&inner, i, direction, k, &body, probe));
            });
        }
        drop(tx);
        // Shard tasks bound themselves by the deadline; the grace covers
        // scheduling overhead, after which a wedged task counts as failed.
        let gather_deadline =
            Instant::now() + self.inner.cfg.deadline + Duration::from_millis(500);
        let mut lists: Vec<Vec<Hit>> = Vec::new();
        for _ in 0..dispatched {
            let remaining = gather_deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(Ok(hits)) => lists.push(hits),
                Ok(Err(_)) => {}
                Err(_) => break,
            }
        }
        if cmr_obs::enabled() {
            for (i, slot) in self.inner.slots.iter().enumerate() {
                cmr_obs::gauge_set(
                    &format!("serve.router.shard.{i}.breaker_state"),
                    f64::from(slot.breaker.state_code()),
                );
            }
        }
        let shards_ok = lists.len();
        if shards_ok == 0 {
            if cmr_obs::enabled() {
                cmr_obs::counter_add("serve.router.unavailable", 1);
            }
            return Err(ServeError::Unavailable(format!("0/{total} shards answered")));
        }
        if shards_ok < total && cmr_obs::enabled() {
            cmr_obs::counter_add("serve.router.degraded", 1);
        }
        Ok(Routed { hits: merge_top_k(&lists, k), shards_ok, shards_total: total })
    }
}

/// Runs one shard's attempt loop: first attempt, bounded retries with
/// jittered exponential backoff, optional hedge — all inside the deadline.
/// Records exactly one outcome into the shard's breaker.
fn shard_query(
    inner: &RouterInner,
    i: usize,
    direction: Direction,
    k: usize,
    body: &Arc<[u8]>,
    probe: bool,
) -> Result<Vec<Hit>, ServeError> {
    // cmr-lint: allow(panic-path) i comes from enumerate() over these same slots in Router::search
    let slot = &inner.slots[i];
    let start = Instant::now();
    let deadline = start + inner.cfg.deadline;
    let (atx, arx) = mpsc::channel::<Result<Vec<Hit>, ServeError>>();
    let spawn_attempt = |tx: mpsc::Sender<Result<Vec<Hit>, ServeError>>| {
        let spec = slot.spec;
        let body = Arc::clone(body);
        std::thread::spawn(move || {
            let _ = tx.send(one_rpc(&spec, direction, k, &body, deadline));
        });
    };
    spawn_attempt(atx.clone());
    let mut inflight = 1usize;
    let mut failures = 0u32;
    let mut hedged = false;
    let mut last_err: Option<ServeError> = None;
    let outcome = loop {
        if inflight == 0 {
            break Err(last_err.take().unwrap_or(ServeError::RequestTimeout));
        }
        let now = Instant::now();
        if now >= deadline {
            break Err(last_err.take().unwrap_or(ServeError::RequestTimeout));
        }
        let may_hedge = !hedged && inner.cfg.hedge_after > Duration::ZERO;
        let wait = if may_hedge {
            (start + inner.cfg.hedge_after)
                .saturating_duration_since(now)
                .min(deadline - now)
                .max(Duration::from_millis(1))
        } else {
            deadline - now
        };
        match arx.recv_timeout(wait) {
            Ok(Ok(hits)) => break Ok(hits),
            Ok(Err(e)) => {
                inflight -= 1;
                last_err = Some(e);
                if failures < inner.cfg.retries {
                    failures += 1;
                    let backoff = jittered_backoff(inner, failures);
                    if Instant::now() + backoff < deadline {
                        if cmr_obs::enabled() {
                            cmr_obs::counter_add("serve.router.retries", 1);
                        }
                        std::thread::sleep(backoff);
                        spawn_attempt(atx.clone());
                        inflight += 1;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if may_hedge && start.elapsed() >= inner.cfg.hedge_after {
                    hedged = true;
                    if cmr_obs::enabled() {
                        cmr_obs::counter_add("serve.router.hedges", 1);
                    }
                    spawn_attempt(atx.clone());
                    inflight += 1;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(last_err.take().unwrap_or(ServeError::RequestTimeout));
            }
        }
    };
    match &outcome {
        Ok(_) => {
            slot.breaker.on_success(probe);
            if cmr_obs::enabled() {
                cmr_obs::counter_add(&format!("serve.router.shard.{i}.ok"), 1);
            }
        }
        Err(_) => {
            slot.breaker.on_failure(probe);
            if cmr_obs::enabled() {
                cmr_obs::counter_add(&format!("serve.router.shard.{i}.err"), 1);
            }
        }
    }
    outcome
}

/// `backoff_base * 2^(attempt-1)` plus up to one `backoff_base` of jitter,
/// exponent capped so the shift cannot overflow.
fn jittered_backoff(inner: &RouterInner, attempt: u32) -> Duration {
    let base_us = inner.cfg.backoff_base.as_micros() as u64;
    let shift = (attempt.saturating_sub(1)).min(6);
    let jitter_us = splitmix64(inner.rng.fetch_add(1, Ordering::Relaxed)) % base_us.max(1);
    Duration::from_micros((base_us << shift) + jitter_us)
}

/// The splitmix64 mixer — a tiny, seedable PRNG step for jitter and for
/// the fault proxy's per-connection fault picks.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One network attempt at one shard: connect, send the oneshot request,
/// read and parse the response, re-base hit indices to global rows.
fn one_rpc(
    spec: &ShardSpec,
    direction: Direction,
    k: usize,
    body: &[u8],
    deadline: Instant,
) -> Result<Vec<Hit>, ServeError> {
    let base = match direction {
        Direction::ImToRec => spec.rec_base,
        Direction::RecToIm => spec.img_base,
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ServeError::RequestTimeout);
    }
    let stream = TcpStream::connect_timeout(&spec.addr, remaining)?;
    let remaining = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(1));
    stream.set_read_timeout(Some(remaining))?;
    stream.set_write_timeout(Some(remaining))?;
    let _ = stream.set_nodelay(true);
    let target = format!("/v1/search/{}?k={k}", direction.as_str());
    http::write_oneshot_request(&mut (&stream), "POST", &target, body)?;
    let limits = Limits { max_head_bytes: 8 << 10, max_body_bytes: 1 << 22 };
    let mut reader = BufReader::new(&stream);
    let resp = http::read_response(&mut reader, &limits)?;
    if resp.status != 200 {
        return Err(ServeError::Unavailable(format!("shard answered {}", resp.status)));
    }
    let text = std::str::from_utf8(&resp.body)
        .map_err(|_| ServeError::Unavailable("shard response is not UTF-8".into()))?;
    let mut hits = parse_hits(text)
        .ok_or_else(|| ServeError::Unavailable("unparsable shard response".into()))?;
    for h in &mut hits {
        h.index += base;
    }
    Ok(hits)
}

/// Parses a worker's `{"hits":[…]}` body back into hits. Rust's f32 parse
/// is correctly rounded, so the shortest-roundtrip similarities the worker
/// rendered come back bit-identical — re-rendering after the merge cannot
/// change a byte.
fn parse_hits(body: &str) -> Option<Vec<Hit>> {
    let inner = body.strip_prefix("{\"hits\":[")?.strip_suffix("]}")?;
    if inner.is_empty() {
        return Some(Vec::new());
    }
    let mut hits = Vec::new();
    for item in inner.split("},{") {
        let item = item.strip_prefix('{').unwrap_or(item);
        let item = item.strip_suffix('}').unwrap_or(item);
        let (idx, sim) = item.split_once(',')?;
        let index = idx.strip_prefix("\"index\":")?.parse::<usize>().ok()?;
        let similarity = sim.strip_prefix("\"similarity\":")?.parse::<f32>().ok()?;
        hits.push(Hit { index, similarity });
    }
    Some(hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_hits_roundtrips_render_hits() {
        let hits = vec![
            Hit { index: 3, similarity: 0.123_456_79 },
            Hit { index: 0, similarity: -0.5 },
            Hit { index: 17, similarity: 1.0 },
        ];
        let parsed = parse_hits(&render_hits(&hits)).expect("parses");
        assert_eq!(parsed, hits, "bit-identical through render + parse");
        assert_eq!(parse_hits(&render_hits(&[])), Some(Vec::new()));
        assert_eq!(parse_hits("not json"), None);
        assert_eq!(parse_hits("{\"hits\":[{\"index\":x,\"similarity\":1}]}"), None);
    }

    #[test]
    fn full_coverage_render_is_exactly_render_hits() {
        let hits = vec![Hit { index: 1, similarity: 0.75 }];
        let routed = Routed { hits: hits.clone(), shards_ok: 4, shards_total: 4 };
        assert!(!routed.degraded());
        assert_eq!(routed.render(), render_hits(&hits));
    }

    #[test]
    fn degraded_render_appends_coverage_fields() {
        let routed = Routed {
            hits: vec![Hit { index: 1, similarity: 0.75 }],
            shards_ok: 3,
            shards_total: 4,
        };
        assert!(routed.degraded());
        assert_eq!(routed.coverage(), 0.75);
        let body = routed.render();
        assert!(body.ends_with(
            ",\"degraded\":true,\"coverage\":0.75,\"shards_ok\":3,\"shards_total\":4}"
        ), "{body}");
        assert!(body.starts_with("{\"hits\":["), "{body}");
    }

    #[test]
    fn splitmix64_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn empty_fleet_is_unavailable() {
        let router = Router::new(Vec::new(), 2, RouterConfig::default());
        let err = router.search(Direction::ImToRec, 1, &[0; 8]).unwrap_err();
        assert!(matches!(err, ServeError::Unavailable(_)), "{err}");
    }
}
