//! Sharded LRU result cache.
//!
//! Keys are raw request bytes (direction + k + query payload), values are
//! fully rendered response bodies, so a cache hit bypasses the admission
//! queue and the ranking kernel entirely. The map is split into
//! independently locked shards selected by FNV-1a so concurrent
//! connections rarely contend on one mutex; recency is a per-shard
//! monotonic stamp and eviction removes the stalest entry of the *shard*
//! (global capacity = sum of shard capacities). `cache_model.rs` checks
//! the whole structure against a reference model under random workloads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a over `key`, the shard-selection hash.
///
/// Deterministic and dependency-free; exposed so the property-test model
/// can reproduce the shard routing exactly.
pub fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Shard {
    map: HashMap<Vec<u8>, (u64, String)>,
    clock: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// A sharded LRU map from request bytes to rendered response bodies.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// Builds a cache of `shards` shards holding `capacity` entries in
    /// total. Zero `capacity` or zero `shards` yields a disabled cache
    /// (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = if capacity == 0 { 0 } else { shards };
        let per_shard_cap = if shards == 0 { 0 } else { capacity.div_ceil(shards) };
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), clock: 0 }))
                .collect(),
            per_shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The shard index `key` routes to (`fnv1a(key) % shards`).
    ///
    /// # Panics
    /// Panics if the cache is disabled (zero shards); callers route through
    /// [`get`](Self::get)/[`insert`](Self::insert), which check first.
    // cmr-lint: allow(panic-path) documented precondition; get/insert guard the zero-shard case before calling
    pub fn shard_index(&self, key: &[u8]) -> usize {
        assert!(!self.shards.is_empty(), "shard_index on a disabled cache");
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// Per-shard entry ceiling (total capacity rounded up to a multiple of
    /// the shard count, then split evenly).
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_cap
    }

    /// Number of shards (0 when the cache is disabled).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks `key` up, refreshing its recency on a hit.
    // cmr-lint: allow(panic-path) idx < shards.len() by modular reduction after the emptiness guard
    pub fn get(&self, key: &[u8]) -> Option<String> {
        if self.shards.is_empty() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let idx = self.shard_index(key);
        let mut shard = self.shards[idx].lock().unwrap_or_else(|p| p.into_inner());
        let stamp = shard.touch();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.0 = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.1.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting the shard's
    /// least-recently-used entry if the shard would exceed its capacity.
    // cmr-lint: allow(panic-path) idx < shards.len() by modular reduction after the emptiness guard
    pub fn insert(&self, key: &[u8], value: String) {
        if self.shards.is_empty() {
            return;
        }
        let idx = self.shard_index(key);
        let mut shard = self.shards[idx].lock().unwrap_or_else(|p| p.into_inner());
        let stamp = shard.touch();
        shard.map.insert(key.to_vec(), (stamp, value));
        while shard.map.len() > self.per_shard_cap {
            let stalest = shard
                .map
                .iter()
                .min_by_key(|(_, (s, _))| *s)
                .map(|(k, _)| k.clone());
            match stalest {
                Some(k) => shard.map.remove(&k),
                None => break,
            };
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).map.len())
            .sum()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_stats_track() {
        let c = ShardedCache::new(8, 2);
        assert!(c.get(b"a").is_none());
        c.insert(b"a", "va".into());
        assert_eq!(c.get(b"a").as_deref(), Some("va"));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn eviction_removes_least_recently_used_of_the_shard() {
        // One shard, capacity 2: classic LRU behaviour is observable.
        let c = ShardedCache::new(2, 1);
        c.insert(b"a", "va".into());
        c.insert(b"b", "vb".into());
        assert_eq!(c.get(b"a").as_deref(), Some("va")); // refresh a
        c.insert(b"c", "vc".into()); // evicts b, the stalest
        assert!(c.get(b"b").is_none());
        assert_eq!(c.get(b"a").as_deref(), Some("va"));
        assert_eq!(c.get(b"c").as_deref(), Some("vc"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let c = ShardedCache::new(2, 1);
        c.insert(b"a", "v1".into());
        c.insert(b"a", "v2".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(b"a").as_deref(), Some("v2"));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let c = ShardedCache::new(16, 4);
        for i in 0..200u32 {
            c.insert(&i.to_le_bytes(), format!("v{i}"));
        }
        assert!(c.len() <= c.shard_count() * c.per_shard_capacity());
    }

    #[test]
    fn zero_capacity_disables_cleanly() {
        let c = ShardedCache::new(0, 4);
        c.insert(b"a", "va".into());
        assert!(c.get(b"a").is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.shard_count(), 0);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
