//! # cmr-serve
//!
//! A std-only micro-batching retrieval server for the trained cross-modal
//! embeddings: a multi-threaded TCP front end with a minimal first-party
//! HTTP/1.1 layer, answering im→rec and rec→im queries against in-memory
//! galleries (exact batched kernel or IVF index).
//!
//! The paper frames retrieval in the cooking context as an interactive,
//! Recipe1M-scale problem; this crate is the serving half of that claim.
//! Its throughput lever is the **admission queue** ([`Batcher`]):
//! concurrently arriving single queries are coalesced into micro-batches
//! (knobs: `CMR_SERVE_BATCH`, `CMR_SERVE_WAIT_US`) and dispatched to the
//! batched ranking kernel — which is bit-identical per query to the
//! single-query path, so batching never changes response bytes. A sharded
//! LRU cache ([`ShardedCache`]) keyed on the raw query bytes short-circuits
//! repeats entirely.
//!
//! Its availability lever is the **fault-tolerant sharded tier**: a
//! [`ShardFleet`] partitions the galleries across worker replicas and a
//! [`Router`] scatter-gathers each query with per-shard deadlines, bounded
//! retries, hedged requests and circuit breakers (knobs:
//! `CMR_SERVE_SHARDS`, `CMR_SERVE_DEADLINE_US`, `CMR_SERVE_RETRIES`,
//! `CMR_SERVE_HEDGE_US`). With every shard healthy the merged response is
//! byte-identical to single-engine serving; with shards down it degrades
//! gracefully instead of failing. The [`FaultProxy`] chaos layer injects
//! delays, resets, truncations and wedged shards to prove it.
//!
//! ```no_run
//! use cmr_retrieval::Embeddings;
//! use cmr_serve::{Engine, ServeConfig, Server};
//!
//! let recipes = Embeddings::new(2, vec![1.0, 0.0, 0.0, 1.0]);
//! let images = recipes.clone();
//! let engine = Engine::exact(recipes, images).expect("galleries valid");
//! let mut server =
//!     Server::start(engine, ServeConfig::from_env(), "127.0.0.1:0").expect("bind");
//! println!("serving on {}", server.local_addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod breaker;
pub mod cache;
pub mod config;
pub mod engine;
pub mod error;
pub mod faultproxy;
pub mod http;
pub mod router;
pub mod server;
pub mod shard;

pub use batch::Batcher;
pub use breaker::{Admission, Breaker, BreakerConfig};
pub use cache::ShardedCache;
pub use config::ServeConfig;
pub use engine::{render_hits, Backend, Direction, Engine};
pub use error::ServeError;
pub use faultproxy::{Fault, FaultPlan, FaultProxy};
pub use router::{Routed, Router, RouterConfig};
pub use server::{Server, MAX_K};
pub use shard::{partition, ShardFleet, ShardSpec};
