//! A fault-injecting TCP proxy for chaos testing the sharded tier.
//!
//! A [`FaultProxy`] sits between the router and one shard worker and, per
//! connection, picks a [`Fault`] from a seeded weighted [`FaultPlan`]
//! (deterministic: connection `n` under seed `s` always draws the same
//! fault — chaos runs are reproducible, in the spirit of the trainer's
//! fault plan). The faults cover the classic distributed-systems failure
//! shapes:
//!
//! * [`Fault::Pass`] — forward bytes untouched,
//! * [`Fault::Delay`] — forward after a fixed latency injection,
//! * [`Fault::Reset`] — drop the connection before answering,
//! * [`Fault::Truncate`] — forward the request, then deliver only half of
//!   the upstream response bytes,
//! * [`Fault::Wedge`] — accept, read, and never respond (the query burns
//!   its whole deadline).
//!
//! The plan is swappable at runtime ([`FaultProxy::set_plan`]) so recovery
//! tests can heal a shard and watch its breaker close again.

use crate::router::splitmix64;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One per-connection failure behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Forward both directions untouched.
    Pass,
    /// Forward untouched after sleeping this long first.
    Delay(Duration),
    /// Drop the connection immediately (the client sees EOF/reset).
    Reset,
    /// Forward the request, read the whole upstream response, deliver only
    /// the first half of its bytes, then close.
    Truncate,
    /// Read and discard forever, never respond (a wedged worker).
    Wedge,
}

/// A seeded, weighted mix of faults; connection `n` draws
/// `pick(n)` deterministically from the seed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    choices: Vec<(Fault, u32)>,
    seed: u64,
}

impl FaultPlan {
    /// Every connection passes untouched.
    pub fn healthy() -> FaultPlan {
        FaultPlan::always(Fault::Pass)
    }

    /// Every connection draws the same fault.
    pub fn always(fault: Fault) -> FaultPlan {
        FaultPlan { choices: vec![(fault, 1)], seed: 0 }
    }

    /// A weighted mix; zero-weight entries never fire. An empty or
    /// all-zero mix behaves as [`FaultPlan::healthy`].
    pub fn mix(choices: Vec<(Fault, u32)>, seed: u64) -> FaultPlan {
        FaultPlan { choices, seed }
    }

    /// The fault connection `n` draws under this plan.
    pub fn pick(&self, n: u64) -> Fault {
        let total: u64 = self.choices.iter().map(|&(_, w)| u64::from(w)).sum();
        if total == 0 {
            return Fault::Pass;
        }
        let mut r = splitmix64(self.seed ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D)) % total;
        for &(fault, w) in &self.choices {
            let w = u64::from(w);
            if r < w {
                return fault;
            }
            r -= w;
        }
        Fault::Pass
    }
}

/// A running fault proxy in front of one upstream address; dropping it
/// shuts it down.
pub struct FaultProxy {
    addr: SocketAddr,
    plan: Arc<Mutex<FaultPlan>>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream` under `plan`.
    ///
    /// # Errors
    /// Propagates socket bind/configuration failures.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let plan = Arc::new(Mutex::new(plan));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_plan = Arc::clone(&plan);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(&listener, upstream, &accept_plan, &accept_shutdown);
        });
        Ok(FaultProxy { addr, plan, shutdown, accept_handle: Some(accept_handle) })
    }

    /// The proxy's bound address (point the router here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swaps the fault plan for all future connections (recovery tests
    /// heal a shard by swapping in [`FaultPlan::healthy`]).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock().unwrap_or_else(|p| p.into_inner()) = plan;
    }

    /// Stops accepting and tears the proxy down. Idempotent; runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &Arc<Mutex<FaultPlan>>,
    shutdown: &Arc<AtomicBool>,
) {
    let conn_seq = AtomicU64::new(0);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let n = conn_seq.fetch_add(1, Ordering::Relaxed);
                let fault = plan.lock().unwrap_or_else(|p| p.into_inner()).pick(n);
                let shutdown = Arc::clone(shutdown);
                std::thread::spawn(move || handle(client, upstream, fault, &shutdown));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle(client: TcpStream, upstream: SocketAddr, fault: Fault, shutdown: &Arc<AtomicBool>) {
    match fault {
        Fault::Reset => drop(client),
        Fault::Wedge => wedge(client, shutdown),
        Fault::Pass => relay(client, upstream, Duration::ZERO, shutdown),
        Fault::Delay(d) => relay(client, upstream, d, shutdown),
        Fault::Truncate => truncate(client, upstream, shutdown),
    }
}

/// Reads and discards until the client gives up or the proxy shuts down.
fn wedge(mut client: TcpStream, shutdown: &Arc<AtomicBool>) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    while !shutdown.load(Ordering::SeqCst) {
        match client.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Full bidirectional pump, optionally after an injected delay.
fn relay(client: TcpStream, upstream: SocketAddr, delay: Duration, shutdown: &Arc<AtomicBool>) {
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
    let Ok(up) = TcpStream::connect(upstream) else {
        return; // upstream gone: client sees EOF, a typed failure
    };
    let (Ok(client_rx), Ok(up_rx)) = (client.try_clone(), up.try_clone()) else {
        return;
    };
    let fwd_shutdown = Arc::clone(shutdown);
    std::thread::spawn(move || pump(client_rx, up, &fwd_shutdown));
    pump(up_rx, client, shutdown);
}

/// Copies `from` into `to` until EOF, error, or proxy shutdown; then
/// propagates the EOF as a write-side shutdown so the far end unblocks.
fn pump(mut from: TcpStream, mut to: TcpStream, shutdown: &Arc<AtomicBool>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 16 * 1024];
    while !shutdown.load(Ordering::SeqCst) {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                // cmr-lint: allow(panic-path) read contract: n <= buf.len()
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Forwards the request, collects the whole upstream response, then
/// delivers only its first half.
fn truncate(mut client: TcpStream, upstream: SocketAddr, shutdown: &Arc<AtomicBool>) {
    let Ok(mut up) = TcpStream::connect(upstream) else {
        return;
    };
    let (Ok(client_rx), Ok(up_tx)) = (client.try_clone(), up.try_clone()) else {
        return;
    };
    let fwd_shutdown = Arc::clone(shutdown);
    std::thread::spawn(move || pump(client_rx, up_tx, &fwd_shutdown));
    // The worker answers oneshot requests with Connection: close, so EOF
    // marks the end of the response; a quiet period after first bytes is
    // treated the same way defensively.
    let _ = up.set_read_timeout(Some(Duration::from_millis(50)));
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    let started = Instant::now();
    while started.elapsed() < Duration::from_secs(1) && !shutdown.load(Ordering::SeqCst) {
        match up.read(&mut buf) {
            Ok(0) => break,
            // cmr-lint: allow(panic-path) read contract: n <= buf.len()
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !response.is_empty() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // cmr-lint: allow(panic-path) len / 2 <= len, always in bounds
    let _ = client.write_all(&response[..response.len() / 2]);
    let _ = client.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_are_deterministic_under_a_seed() {
        let plan = FaultPlan::mix(
            vec![(Fault::Pass, 3), (Fault::Reset, 1), (Fault::Wedge, 1)],
            42,
        );
        let first: Vec<Fault> = (0..32).map(|n| plan.pick(n)).collect();
        let second: Vec<Fault> = (0..32).map(|n| plan.pick(n)).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|f| *f == Fault::Pass), "mix hits Pass");
        assert!(
            first.iter().any(|f| *f != Fault::Pass),
            "mix hits at least one fault in 32 draws"
        );
    }

    #[test]
    fn weights_shape_the_distribution() {
        let plan = FaultPlan::mix(vec![(Fault::Pass, 1), (Fault::Reset, 0)], 7);
        assert!((0..100).all(|n| plan.pick(n) == Fault::Pass), "zero weight never fires");
        assert_eq!(FaultPlan::mix(Vec::new(), 7).pick(3), Fault::Pass, "empty mix passes");
        assert_eq!(FaultPlan::always(Fault::Wedge).pick(9), Fault::Wedge);
    }

    #[test]
    fn healthy_proxy_relays_bytes_untouched() {
        // A trivial echo upstream.
        let echo = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let upstream = echo.local_addr().expect("addr");
        std::thread::spawn(move || {
            if let Ok((mut s, _)) = echo.accept() {
                let mut buf = [0u8; 64];
                if let Ok(n) = s.read(&mut buf) {
                    let _ = s.write_all(&buf[..n]);
                }
            }
        });
        let mut proxy = FaultProxy::start(upstream, FaultPlan::healthy()).expect("start");
        let mut c = TcpStream::connect(proxy.addr()).expect("connect");
        c.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        c.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        c.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
        proxy.shutdown();
    }

    #[test]
    fn reset_drops_the_connection_without_bytes() {
        let echo = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let upstream = echo.local_addr().expect("addr");
        let mut proxy =
            FaultProxy::start(upstream, FaultPlan::always(Fault::Reset)).expect("start");
        let mut c = TcpStream::connect(proxy.addr()).expect("connect");
        let _ = c.write_all(b"ping");
        c.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let mut buf = [0u8; 4];
        let got = c.read(&mut buf);
        assert!(matches!(got, Ok(0) | Err(_)), "no response bytes: {got:?}");
        proxy.shutdown();
    }
}
