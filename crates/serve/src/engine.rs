//! The retrieval engine behind the server: two galleries (one per search
//! direction), each served either by the exact batched ranking kernel or
//! by an IVF index.
//!
//! ## Response identity across batch sizes
//!
//! The admission queue may execute a query alone or inside any micro-batch;
//! the bytes a client receives must not depend on which. Both backends
//! guarantee it:
//!
//! * **Exact** — similarities come from `cmr_tensor::matmul_transb_into`,
//!   whose every output element is a function of only its own (query row,
//!   gallery row) pair, so a row of a size-`B` product is bit-identical to
//!   the size-1 product of that query. Selection then runs through
//!   [`top_k_of`], which is deterministic in its input sequence.
//! * **IVF** — [`IvfIndex::search_batch`] is bit-identical to per-query
//!   [`IvfIndex::search`] by construction (same sequential dots, same
//!   selection core); its own unit tests and the `kernel_equivalence`
//!   suite lock this down.
//!
//! [`Engine::search_one`] *is* the batch path at `B = 1` — the reference
//! path the integration tests compare batched responses against.

use crate::error::ServeError;
use cmr_retrieval::knn::Hit;
use cmr_retrieval::{top_k_of, Embeddings, IvfIndex, SearchError};
use std::fmt::Write as _;

/// A retrieval direction, naming which gallery the query ranks against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Image query against the recipe gallery.
    ImToRec,
    /// Recipe query against the image gallery.
    RecToIm,
}

impl Direction {
    /// Stable one-byte tag, the cache-key prefix for this direction.
    pub fn tag(self) -> u8 {
        match self {
            Direction::ImToRec => 0,
            Direction::RecToIm => 1,
        }
    }

    /// The URL path segment naming this direction.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::ImToRec => "im2rec",
            Direction::RecToIm => "rec2im",
        }
    }

    /// Parses a URL path segment (`im2rec` / `rec2im`).
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "im2rec" => Some(Direction::ImToRec),
            "rec2im" => Some(Direction::RecToIm),
            _ => None,
        }
    }
}

/// How one direction's gallery answers queries.
pub enum Backend {
    /// Exhaustive ranking via the batched `matmul_transb_into` kernel.
    Exact(Embeddings),
    /// IVF-Flat approximate search probing `nprobe` cells per query.
    Ivf {
        /// The built index.
        index: IvfIndex,
        /// Cells probed per query.
        nprobe: usize,
    },
}

impl Backend {
    /// Embedding dimensionality this backend serves.
    pub fn dim(&self) -> usize {
        match self {
            Backend::Exact(g) => g.dim,
            Backend::Ivf { index, .. } => index.dim(),
        }
    }

    /// Number of gallery vectors.
    pub fn len(&self) -> usize {
        match self {
            Backend::Exact(g) => g.len(),
            Backend::Ivf { index, .. } => index.len(),
        }
    }

    /// `true` when the gallery is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ranks every query in the batch, returning per-query hit lists.
    ///
    /// # Errors
    /// [`SearchError`] for a zero `k`, a configured-zero `nprobe`, or a
    /// query dimension the backend does not serve.
    fn search_batch(&self, queries: &Embeddings, k: usize) -> Result<Vec<Vec<Hit>>, SearchError> {
        match self {
            Backend::Exact(gallery) => {
                if k == 0 {
                    return Err(SearchError::ZeroK);
                }
                if queries.dim != gallery.dim {
                    return Err(SearchError::DimMismatch {
                        expected: gallery.dim,
                        got: queries.dim,
                    });
                }
                let b = queries.len();
                let n = gallery.len();
                if b == 0 {
                    return Ok(Vec::new());
                }
                let mut sims = vec![0.0f32; b * n];
                cmr_tensor::matmul::matmul_transb_into(
                    &queries.data,
                    &gallery.data,
                    gallery.dim,
                    &mut sims,
                );
                Ok(sims
                    .chunks_exact(n)
                    .map(|row| top_k_of(row.iter().enumerate().map(|(i, &s)| (i, s)), k))
                    .collect())
            }
            Backend::Ivf { index, nprobe } => index.search_batch(queries, k, *nprobe),
        }
    }
}

/// The two-direction retrieval engine the server shares across threads.
pub struct Engine {
    im2rec: Backend,
    rec2im: Backend,
}

impl Engine {
    /// Builds an engine from per-direction backends.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when the two backends disagree on
    /// dimensionality, either gallery is empty, or an IVF backend is
    /// configured with `nprobe == 0` (an engine that can never answer is a
    /// deployment mistake worth failing loudly at startup).
    pub fn new(im2rec: Backend, rec2im: Backend) -> Result<Self, ServeError> {
        for backend in [&im2rec, &rec2im] {
            if let Backend::Ivf { nprobe: 0, .. } = backend {
                return Err(ServeError::BadRequest(
                    "ivf backend configured with nprobe = 0".into(),
                ));
            }
        }
        if im2rec.dim() != rec2im.dim() {
            return Err(ServeError::BadRequest(format!(
                "backend dimension mismatch: im2rec {} vs rec2im {}",
                im2rec.dim(),
                rec2im.dim()
            )));
        }
        if im2rec.is_empty() || rec2im.is_empty() {
            return Err(ServeError::BadRequest("empty gallery".into()));
        }
        Ok(Engine { im2rec, rec2im })
    }

    /// Exact-search engine over the two galleries (im2rec queries rank
    /// against `recipes`, rec2im queries against `images`).
    ///
    /// # Errors
    /// Same conditions as [`new`](Self::new).
    pub fn exact(recipes: Embeddings, images: Embeddings) -> Result<Self, ServeError> {
        Self::new(Backend::Exact(recipes), Backend::Exact(images))
    }

    /// Embedding dimensionality queries must carry.
    pub fn dim(&self) -> usize {
        self.im2rec.dim()
    }

    /// The backend serving `direction`.
    fn backend(&self, direction: Direction) -> &Backend {
        match direction {
            Direction::ImToRec => &self.im2rec,
            Direction::RecToIm => &self.rec2im,
        }
    }

    /// Ranks a micro-batch of same-direction queries.
    ///
    /// # Errors
    /// [`SearchError`] for a zero `k` or a query dimension mismatch — the
    /// HTTP layer maps these to 400, and [`SearchError::EmptyIndex`] (an
    /// index loaded from disk with no rows) to 503. Until PR 10 these were
    /// panics behind an admission-time assert; now that indexes arrive from
    /// `CMRIVF1` files the engine itself must stay panic-free.
    pub fn search_batch(
        &self,
        direction: Direction,
        queries: &Embeddings,
        k: usize,
    ) -> Result<Vec<Vec<Hit>>, SearchError> {
        self.backend(direction).search_batch(queries, k)
    }

    /// The single-query reference path: exactly [`search_batch`]
    /// (Self::search_batch) with a batch of one.
    ///
    /// # Errors
    /// Same conditions as [`search_batch`](Self::search_batch).
    pub fn search_one(
        &self,
        direction: Direction,
        query: &[f32],
        k: usize,
    ) -> Result<Vec<Hit>, SearchError> {
        // A wrong-length slice must be a typed error, not the ragged-data
        // panic inside `Embeddings::new`.
        if query.len() != self.dim() {
            return Err(SearchError::DimMismatch { expected: self.dim(), got: query.len() });
        }
        let queries = Embeddings::new(self.dim(), query.to_vec());
        Ok(self.search_batch(direction, &queries, k)?.pop().unwrap_or_default())
    }
}

/// Renders a hit list as the response body JSON.
///
/// Float formatting uses Rust's shortest-roundtrip `Display`, which is
/// deterministic for a given bit pattern — byte-identical hits render to
/// byte-identical bodies, the property the batching integration test
/// checks end to end.
pub fn render_hits(hits: &[Hit]) -> String {
    let mut out = String::with_capacity(32 + hits.len() * 32);
    out.push_str("{\"hits\":[");
    for (i, h) in hits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"index\":{},\"similarity\":{}}}", h.index, h.similarity);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_embeddings(n: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Embeddings::new(dim, (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .l2_normalized()
    }

    #[test]
    fn exact_batch_rows_are_bit_identical_to_singletons() {
        let engine =
            Engine::exact(random_embeddings(60, 8, 1), random_embeddings(40, 8, 2)).unwrap();
        let queries = random_embeddings(7, 8, 3);
        for &dir in &[Direction::ImToRec, Direction::RecToIm] {
            let batched = engine.search_batch(dir, &queries, 5).unwrap();
            for q in 0..queries.len() {
                let single = engine.search_one(dir, queries.vector(q), 5).unwrap();
                assert_eq!(batched[q], single, "{dir:?} query {q}");
            }
        }
    }

    #[test]
    fn directions_rank_against_their_own_gallery() {
        // Recipes along e0, images along e1: an e0 query must score 1.0
        // against recipes (im2rec) and 0.0 against images (rec2im).
        let recipes = Embeddings::new(2, vec![1.0, 0.0]);
        let images = Embeddings::new(2, vec![0.0, 1.0]);
        let engine = Engine::new(Backend::Exact(recipes), Backend::Exact(images)).unwrap();
        let hit = engine.search_one(Direction::ImToRec, &[1.0, 0.0], 1).unwrap();
        assert_eq!(hit[0].similarity, 1.0);
        let miss = engine.search_one(Direction::RecToIm, &[1.0, 0.0], 1).unwrap();
        assert_eq!(miss[0].similarity, 0.0);
    }

    #[test]
    fn ivf_backend_matches_index_search() {
        let g = random_embeddings(120, 8, 4);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let index = IvfIndex::build(g.clone(), 4, 4, &mut rng);
        let engine = Engine::new(
            Backend::Ivf { index, nprobe: 2 },
            Backend::Exact(g.clone()),
        )
        .unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let reference = IvfIndex::build(g.clone(), 4, 4, &mut rng);
        for qi in [0usize, 17, 63] {
            let got = engine.search_one(Direction::ImToRec, g.vector(qi), 5).unwrap();
            let want = reference.search(g.vector(qi), 5, 2).unwrap();
            assert_eq!(got, want, "query {qi}");
        }
    }

    #[test]
    fn constructor_rejects_mismatched_or_empty_galleries() {
        assert!(Engine::exact(random_embeddings(4, 8, 6), random_embeddings(4, 16, 7)).is_err());
        assert!(Engine::exact(
            random_embeddings(4, 8, 8),
            Embeddings::with_capacity(8, 0)
        )
        .is_err());
    }

    #[test]
    fn constructor_rejects_zero_nprobe_ivf_backend() {
        let g = random_embeddings(40, 8, 9);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(10);
        let index = IvfIndex::build(g.clone(), 4, 3, &mut rng);
        assert!(Engine::new(Backend::Ivf { index, nprobe: 0 }, Backend::Exact(g)).is_err());
    }

    #[test]
    fn search_rejects_bad_requests_with_typed_errors() {
        let engine =
            Engine::exact(random_embeddings(10, 8, 11), random_embeddings(10, 8, 12)).unwrap();
        assert_eq!(
            engine.search_one(Direction::ImToRec, &[0.0; 8], 0),
            Err(SearchError::ZeroK)
        );
        assert_eq!(
            engine.search_one(Direction::ImToRec, &[0.0; 4], 1),
            Err(SearchError::DimMismatch { expected: 8, got: 4 })
        );
    }

    #[test]
    fn render_hits_is_deterministic_compact_json() {
        let hits = vec![
            Hit { index: 3, similarity: 0.5 },
            Hit { index: 0, similarity: 0.25 },
        ];
        assert_eq!(
            render_hits(&hits),
            "{\"hits\":[{\"index\":3,\"similarity\":0.5},{\"index\":0,\"similarity\":0.25}]}"
        );
        assert_eq!(render_hits(&[]), "{\"hits\":[]}");
    }

    #[test]
    fn direction_tags_and_paths_roundtrip() {
        for &dir in &[Direction::ImToRec, Direction::RecToIm] {
            assert_eq!(Direction::from_str(dir.as_str()), Some(dir));
        }
        assert_ne!(Direction::ImToRec.tag(), Direction::RecToIm.tag());
        assert_eq!(Direction::from_str("sideways"), None);
    }
}
