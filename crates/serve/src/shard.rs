//! Gallery sharding: contiguous partitions and an in-process worker fleet.
//!
//! A sharded deployment splits each gallery into `n` contiguous row slices
//! and runs one full [`Server`] per shard, each wrapping its own
//! [`Engine`] over its slices. Workers speak the exact same TCP/HTTP
//! protocol as a standalone server — the router only knows their socket
//! addresses — so a shard can later move out-of-process (or behind a
//! [`FaultProxy`](crate::faultproxy::FaultProxy)) without code changes.
//!
//! Because `matmul_transb_into` computes every similarity from only its own
//! (query row, gallery row) pair, a shard's similarities are bit-identical
//! to the corresponding rows of the unsharded product; re-basing each
//! shard's hit indices by its slice offset and merging with
//! [`cmr_retrieval::merge_top_k`] reproduces the single-engine response
//! exactly (see `tests/shard_merge.rs`).

use crate::config::ServeConfig;
use crate::engine::Engine;
use crate::error::ServeError;
use crate::server::Server;
use cmr_retrieval::Embeddings;
use std::net::SocketAddr;

/// Where one shard lives and which global rows it owns.
#[derive(Clone, Copy, Debug)]
pub struct ShardSpec {
    /// The worker's socket address.
    pub addr: SocketAddr,
    /// First global recipe-gallery row this shard serves (im2rec re-base).
    pub rec_base: usize,
    /// First global image-gallery row this shard serves (rec2im re-base).
    pub img_base: usize,
}

/// Splits `n` rows into `shards` contiguous `(lo, hi)` ranges; the first
/// `n % shards` ranges get one extra row.
///
/// # Panics
/// Panics if `shards == 0`.
// cmr-lint: allow(panic-path) documented precondition: callers validate the shard count first
pub fn partition(n: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards >= 1, "partition: shard count must be positive");
    let base = n / shards;
    let rem = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for i in 0..shards {
        let hi = lo + base + usize::from(i < rem);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// An in-process fleet of shard workers, one [`Server`] per gallery slice.
pub struct ShardFleet {
    workers: Vec<Option<Server>>,
    specs: Vec<ShardSpec>,
}

impl ShardFleet {
    /// Partitions both galleries into `shards` contiguous slices and boots
    /// one worker server per shard on `127.0.0.1:0`.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when `shards` is zero or exceeds either
    /// gallery's row count (an empty slice would make an engine that can
    /// never answer); [`ServeError::Io`] on bind failure.
    pub fn launch(
        recipes: &Embeddings,
        images: &Embeddings,
        shards: usize,
        cfg: &ServeConfig,
    ) -> Result<ShardFleet, ServeError> {
        if shards == 0 {
            return Err(ServeError::BadRequest("shard count must be positive".into()));
        }
        if shards > recipes.len() || shards > images.len() {
            return Err(ServeError::BadRequest(format!(
                "{shards} shards over galleries of {} / {} rows would leave a shard empty",
                recipes.len(),
                images.len()
            )));
        }
        let rec_ranges = partition(recipes.len(), shards);
        let img_ranges = partition(images.len(), shards);
        let mut workers = Vec::with_capacity(shards);
        let mut specs = Vec::with_capacity(shards);
        for (&(rlo, rhi), &(ilo, ihi)) in rec_ranges.iter().zip(&img_ranges) {
            let engine =
                Engine::exact(recipes.slice_rows(rlo, rhi), images.slice_rows(ilo, ihi))?;
            let server = Server::start(engine, cfg.clone(), "127.0.0.1:0")?;
            specs.push(ShardSpec { addr: server.local_addr(), rec_base: rlo, img_base: ilo });
            workers.push(Some(server));
        }
        Ok(ShardFleet { workers, specs })
    }

    /// The shard specs, in shard order (what a router is built from).
    pub fn specs(&self) -> Vec<ShardSpec> {
        self.specs.clone()
    }

    /// Number of shards in the fleet (dead or alive).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the fleet holds no shards.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Kills worker `i` (graceful shutdown, port released) — the chaos
    /// suite's "shard died" primitive. Idempotent; out-of-range is a no-op.
    pub fn kill(&mut self, i: usize) {
        if let Some(slot) = self.workers.get_mut(i) {
            *slot = None;
        }
    }

    /// Shuts every worker down.
    pub fn shutdown(&mut self) {
        for slot in &mut self.workers {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_contiguously_with_balanced_sizes() {
        for (n, shards) in [(10, 3), (9, 3), (1, 1), (7, 7), (100, 8)] {
            let ranges = partition(n, shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[ranges.len() - 1].1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let sizes: Vec<usize> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
            let max = sizes.iter().max().unwrap_or(&0);
            let min = sizes.iter().min().unwrap_or(&0);
            assert!(max - min <= 1, "balanced within one row: {sizes:?}");
        }
    }

    #[test]
    fn spawn_rejects_empty_shards() {
        let g = Embeddings::new(2, vec![1.0, 0.0, 0.0, 1.0]);
        assert!(ShardFleet::launch(&g, &g, 0, &ServeConfig::default()).is_err());
        assert!(ShardFleet::launch(&g, &g, 3, &ServeConfig::default()).is_err());
    }

    #[test]
    fn spawn_boots_one_worker_per_shard_with_rebased_specs() {
        let g = Embeddings::new(2, vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.0]).l2_normalized();
        let mut fleet = ShardFleet::launch(&g, &g, 2, &ServeConfig::default()).expect("spawn");
        assert_eq!(fleet.len(), 2);
        let specs = fleet.specs();
        assert_eq!(specs[0].rec_base, 0);
        assert_eq!(specs[1].rec_base, 2, "first shard got the extra row");
        assert_ne!(specs[0].addr, specs[1].addr);
        fleet.kill(0);
        fleet.kill(0); // idempotent
        fleet.shutdown();
    }
}
