//! A per-shard circuit breaker: closed → open → half-open → closed.
//!
//! The router records one outcome per shard per routed query. While the
//! breaker is **closed** every query is admitted; `failure_threshold`
//! consecutive failures trip it **open**, and for `cooldown` the shard is
//! rejected without a network attempt (fast-failing instead of burning the
//! query's deadline on a dead shard). When the cooldown expires the breaker
//! turns **half-open** and admits exactly one probe query at a time; after
//! `probe_successes` successful probes it closes again, while a failed
//! probe re-opens it for another cooldown.
//!
//! All transitions happen inside [`Breaker::admit_at`] /
//! [`Breaker::on_success`] / [`Breaker::on_failure_at`]; there is no
//! background timer thread — time only advances when queries flow, which
//! keeps the breaker deterministic under test-controlled clocks (every
//! time-dependent method takes an explicit `Instant`).

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Breaker tuning; defaults are sized for the integration tests.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open probe.
    pub cooldown: Duration,
    /// Successful probes required to close a half-open breaker.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
            probe_successes: 1,
        }
    }
}

/// The three classic breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Healthy: admit everything, count consecutive failures.
    Closed { failures: u32 },
    /// Tripped: reject everything until `until`.
    Open { until: Instant },
    /// Testing the waters: admit one probe at a time.
    HalfOpen { successes: u32, inflight: bool },
}

/// What the breaker says about one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Closed breaker: go ahead.
    Allow,
    /// Half-open breaker: go ahead, and report the outcome as a probe.
    Probe,
    /// Open breaker (or a probe already in flight): skip this shard.
    Reject,
}

/// A thread-safe circuit breaker guarding one shard.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker { cfg, state: Mutex::new(State::Closed { failures: 0 }) }
    }

    /// A poisoned lock only means another thread panicked mid-transition;
    /// the state value itself is always valid, so recover the guard.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// [`admit_at`](Self::admit_at) against the real clock.
    pub fn admit(&self) -> Admission {
        self.admit_at(Instant::now())
    }

    /// Asks whether a query may be sent to this shard at time `now`,
    /// transitioning open → half-open when the cooldown has expired.
    pub fn admit_at(&self, now: Instant) -> Admission {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => Admission::Allow,
            State::Open { until } if now >= until => {
                *state = State::HalfOpen { successes: 0, inflight: true };
                Admission::Probe
            }
            State::Open { .. } => Admission::Reject,
            State::HalfOpen { inflight: true, .. } => Admission::Reject,
            State::HalfOpen { successes, inflight: false } => {
                *state = State::HalfOpen { successes, inflight: true };
                Admission::Probe
            }
        }
    }

    /// Records a successful shard outcome. `probe` must be `true` iff the
    /// admission was [`Admission::Probe`].
    pub fn on_success(&self, probe: bool) {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => *state = State::Closed { failures: 0 },
            State::HalfOpen { successes, .. } if probe => {
                let successes = successes + 1;
                if successes >= self.cfg.probe_successes {
                    *state = State::Closed { failures: 0 };
                } else {
                    *state = State::HalfOpen { successes, inflight: false };
                }
            }
            // A stale success (admitted before the breaker tripped) carries
            // no fresh information about the shard's current health.
            State::Open { .. } | State::HalfOpen { .. } => {}
        }
    }

    /// [`on_failure_at`](Self::on_failure_at) against the real clock.
    pub fn on_failure(&self, probe: bool) {
        self.on_failure_at(probe, Instant::now());
    }

    /// Records a failed shard outcome at time `now`. `probe` must be `true`
    /// iff the admission was [`Admission::Probe`].
    pub fn on_failure_at(&self, probe: bool, now: Instant) {
        let mut state = self.lock();
        match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.failure_threshold {
                    *state = State::Open { until: now + self.cfg.cooldown };
                } else {
                    *state = State::Closed { failures };
                }
            }
            State::HalfOpen { .. } if probe => {
                *state = State::Open { until: now + self.cfg.cooldown };
            }
            // Stale failures while open / half-open (from attempts admitted
            // earlier) must not extend the cooldown they already caused.
            State::Open { .. } | State::HalfOpen { .. } => {}
        }
    }

    /// `true` while the breaker is open (still inside its cooldown).
    pub fn is_open(&self) -> bool {
        matches!(*self.lock(), State::Open { .. })
    }

    /// Numeric state for gauges: 0 closed, 1 open, 2 half-open.
    pub fn state_code(&self) -> u8 {
        match *self.lock() {
            State::Closed { .. } => 0,
            State::Open { .. } => 1,
            State::HalfOpen { .. } => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            probe_successes: 2,
        }
    }

    #[test]
    fn trips_open_after_threshold_consecutive_failures() {
        let b = Breaker::new(cfg());
        let t0 = Instant::now();
        assert_eq!(b.admit_at(t0), Admission::Allow);
        b.on_failure_at(false, t0);
        b.on_failure_at(false, t0);
        assert_eq!(b.admit_at(t0), Admission::Allow, "below threshold stays closed");
        b.on_failure_at(false, t0);
        assert_eq!(b.admit_at(t0), Admission::Reject, "third failure trips it");
        assert!(b.is_open());
        assert_eq!(b.state_code(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let b = Breaker::new(cfg());
        let t0 = Instant::now();
        b.on_failure_at(false, t0);
        b.on_failure_at(false, t0);
        b.on_success(false);
        b.on_failure_at(false, t0);
        b.on_failure_at(false, t0);
        assert_eq!(b.admit_at(t0), Admission::Allow, "failures must be consecutive");
    }

    #[test]
    fn cooldown_expiry_admits_exactly_one_probe() {
        let b = Breaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure_at(false, t0);
        }
        let after = t0 + Duration::from_millis(150);
        assert_eq!(b.admit_at(after), Admission::Probe);
        assert_eq!(b.state_code(), 2);
        assert_eq!(b.admit_at(after), Admission::Reject, "one probe at a time");
    }

    #[test]
    fn probe_successes_close_and_probe_failure_reopens() {
        let b = Breaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure_at(false, t0);
        }
        let after = t0 + Duration::from_millis(150);
        assert_eq!(b.admit_at(after), Admission::Probe);
        b.on_success(true);
        assert_eq!(b.admit_at(after), Admission::Probe, "needs 2 probe successes");
        b.on_success(true);
        assert_eq!(b.admit_at(after), Admission::Allow, "closed again");
        assert_eq!(b.state_code(), 0);

        for _ in 0..3 {
            b.on_failure_at(false, after);
        }
        let later = after + Duration::from_millis(150);
        assert_eq!(b.admit_at(later), Admission::Probe);
        b.on_failure_at(true, later);
        assert_eq!(b.admit_at(later), Admission::Reject, "failed probe reopens");
        assert!(b.is_open());
    }

    #[test]
    fn stale_outcomes_do_not_disturb_open_or_halfopen() {
        let b = Breaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure_at(false, t0);
        }
        // Stale non-probe outcomes from earlier-admitted attempts.
        b.on_failure_at(false, t0);
        b.on_success(false);
        assert_eq!(b.admit_at(t0), Admission::Reject, "still open");
        let after = t0 + Duration::from_millis(150);
        assert_eq!(b.admit_at(after), Admission::Probe);
        b.on_failure_at(false, after);
        assert_eq!(b.state_code(), 2, "stale failure leaves half-open alone");
    }
}
