//! Server configuration and the serving environment knobs.
//!
//! The only `std::env::var` reads in this crate live in this file (see
//! [`ServeConfig::from_env`]) and are registered with the
//! `env-centralization` lint rule:
//!
//! * `CMR_SERVE_BATCH` — admission-queue micro-batch ceiling,
//! * `CMR_SERVE_WAIT_US` — admission-queue coalescing window in µs,
//! * `CMR_SERVE_SHARDS` — gallery shard count for the scatter-gather tier,
//! * `CMR_SERVE_DEADLINE_US` — per-shard scatter-gather deadline in µs,
//! * `CMR_SERVE_RETRIES` — bounded retry budget per shard per query,
//! * `CMR_SERVE_HEDGE_US` — straggler hedge delay in µs (0 disables),
//! * `CMR_IVF_NPROBE` — cells probed per query when serving an IVF index
//!   (the recall/latency dial for indexes booted from `CMRIVF1` files).
//!
//! Everything else (timeouts, cache geometry, worker count) is plain struct
//! state with defaults tuned for the integration tests; bins override the
//! fields directly from their CLI flags.

use std::time::Duration;

/// Admission-queue batch ceiling when `CMR_SERVE_BATCH` is unset/invalid.
pub const DEFAULT_MAX_BATCH: usize = 8;
/// Coalescing window when `CMR_SERVE_WAIT_US` is unset/invalid.
pub const DEFAULT_MAX_WAIT_US: u64 = 500;
/// Shard count when `CMR_SERVE_SHARDS` is unset/invalid (1 = unsharded).
pub const DEFAULT_SHARDS: usize = 1;
/// Per-shard deadline when `CMR_SERVE_DEADLINE_US` is unset/invalid.
pub const DEFAULT_DEADLINE_US: u64 = 250_000;
/// Retry budget when `CMR_SERVE_RETRIES` is unset/invalid.
pub const DEFAULT_RETRIES: u32 = 2;
/// Hedge delay when `CMR_SERVE_HEDGE_US` is unset/invalid (0 = no hedging).
pub const DEFAULT_HEDGE_US: u64 = 0;
/// IVF probe width when `CMR_IVF_NPROBE` is unset/invalid.
pub const DEFAULT_IVF_NPROBE: usize = 8;

/// Tunables for [`Server`](crate::Server), the admission queue and the
/// result cache.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest micro-batch the admission queue hands the ranking kernel.
    pub max_batch: usize,
    /// How long the first queued request waits for company before its batch
    /// is dispatched anyway.
    pub max_wait: Duration,
    /// Number of batcher worker threads draining the admission queue.
    pub workers: usize,
    /// Per-connection socket read timeout; a connection that goes quiet
    /// mid-request for this long gets `408 Request Timeout`.
    pub read_timeout: Duration,
    /// Total result-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Largest accepted request body in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line + headers, `431` beyond).
    pub max_head_bytes: usize,
    /// Number of gallery shards the scatter-gather tier fans out to
    /// (1 = classic single-engine serving).
    pub shards: usize,
    /// Per-shard scatter-gather deadline: a shard that has not answered
    /// within this budget (across retries and hedges) is dropped from the
    /// merge and the response is marked degraded.
    pub deadline: Duration,
    /// Bounded retry budget per shard per query (0 = first attempt only).
    pub retries: u32,
    /// How long to wait on a shard's first attempt before hedging a second
    /// concurrent request at it; `Duration::ZERO` disables hedging.
    pub hedge_after: Duration,
    /// Cells probed per query when a direction is served by an IVF index
    /// ([`Backend::Ivf`](crate::Backend::Ivf)); ignored by exact backends.
    /// More probes buy recall with latency — `bench_ann` archives the curve.
    pub ivf_nprobe: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: DEFAULT_MAX_BATCH,
            max_wait: Duration::from_micros(DEFAULT_MAX_WAIT_US),
            workers: 2,
            read_timeout: Duration::from_millis(2000),
            cache_capacity: 1024,
            cache_shards: 8,
            max_body_bytes: 1 << 20,
            max_head_bytes: 8 << 10,
            shards: DEFAULT_SHARDS,
            deadline: Duration::from_micros(DEFAULT_DEADLINE_US),
            retries: DEFAULT_RETRIES,
            hedge_after: Duration::from_micros(DEFAULT_HEDGE_US),
            ivf_nprobe: DEFAULT_IVF_NPROBE,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the two serving env knobs, resolved through
    /// `lookup` (`env::var` in production, a closure in tests).
    ///
    /// Unset, empty, unparsable or zero values fall back to the defaults —
    /// a misconfigured knob must degrade to a working server, never panic.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(batch) = lookup("CMR_SERVE_BATCH").and_then(|v| v.trim().parse::<usize>().ok())
        {
            if batch >= 1 {
                cfg.max_batch = batch;
            }
        }
        if let Some(us) = lookup("CMR_SERVE_WAIT_US").and_then(|v| v.trim().parse::<u64>().ok()) {
            cfg.max_wait = Duration::from_micros(us);
        }
        if let Some(shards) =
            lookup("CMR_SERVE_SHARDS").and_then(|v| v.trim().parse::<usize>().ok())
        {
            if shards >= 1 {
                cfg.shards = shards;
            }
        }
        if let Some(us) =
            lookup("CMR_SERVE_DEADLINE_US").and_then(|v| v.trim().parse::<u64>().ok())
        {
            if us >= 1 {
                cfg.deadline = Duration::from_micros(us);
            }
        }
        if let Some(retries) =
            lookup("CMR_SERVE_RETRIES").and_then(|v| v.trim().parse::<u32>().ok())
        {
            cfg.retries = retries;
        }
        if let Some(us) = lookup("CMR_SERVE_HEDGE_US").and_then(|v| v.trim().parse::<u64>().ok()) {
            cfg.hedge_after = Duration::from_micros(us);
        }
        if let Some(nprobe) =
            lookup("CMR_IVF_NPROBE").and_then(|v| v.trim().parse::<usize>().ok())
        {
            if nprobe >= 1 {
                cfg.ivf_nprobe = nprobe;
            }
        }
        cfg
    }

    /// [`from_lookup`](Self::from_lookup) against the process environment:
    /// reads `CMR_SERVE_BATCH`, `CMR_SERVE_WAIT_US`, `CMR_SERVE_SHARDS`,
    /// `CMR_SERVE_DEADLINE_US`, `CMR_SERVE_RETRIES`, `CMR_SERVE_HEDGE_US`
    /// and `CMR_IVF_NPROBE`.
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_unset() {
        let cfg = ServeConfig::from_lookup(|_| None);
        assert_eq!(cfg.max_batch, DEFAULT_MAX_BATCH);
        assert_eq!(cfg.max_wait, Duration::from_micros(DEFAULT_MAX_WAIT_US));
    }

    #[test]
    fn knobs_override_defaults() {
        let cfg = ServeConfig::from_lookup(|name| match name {
            "CMR_SERVE_BATCH" => Some(" 32 ".into()),
            "CMR_SERVE_WAIT_US" => Some("1500".into()),
            "CMR_SERVE_SHARDS" => Some("4".into()),
            "CMR_SERVE_DEADLINE_US" => Some("90000".into()),
            "CMR_SERVE_RETRIES" => Some("5".into()),
            "CMR_SERVE_HEDGE_US" => Some("20000".into()),
            "CMR_IVF_NPROBE" => Some("24".into()),
            _ => None,
        });
        assert_eq!(cfg.max_batch, 32);
        assert_eq!(cfg.max_wait, Duration::from_micros(1500));
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.deadline, Duration::from_micros(90_000));
        assert_eq!(cfg.retries, 5);
        assert_eq!(cfg.hedge_after, Duration::from_micros(20_000));
        assert_eq!(cfg.ivf_nprobe, 24);
    }

    #[test]
    fn invalid_or_zero_knobs_fall_back() {
        let cfg = ServeConfig::from_lookup(|name| match name {
            "CMR_SERVE_BATCH" => Some("0".into()),
            "CMR_SERVE_WAIT_US" => Some("soon".into()),
            "CMR_SERVE_SHARDS" => Some("0".into()),
            "CMR_SERVE_DEADLINE_US" => Some("0".into()),
            "CMR_SERVE_RETRIES" => Some("many".into()),
            "CMR_SERVE_HEDGE_US" => Some("-3".into()),
            "CMR_IVF_NPROBE" => Some("0".into()),
            _ => None,
        });
        assert_eq!(cfg.max_batch, DEFAULT_MAX_BATCH);
        assert_eq!(cfg.max_wait, Duration::from_micros(DEFAULT_MAX_WAIT_US));
        assert_eq!(cfg.shards, DEFAULT_SHARDS, "a zero shard count is meaningless");
        assert_eq!(cfg.deadline, Duration::from_micros(DEFAULT_DEADLINE_US));
        assert_eq!(cfg.retries, DEFAULT_RETRIES);
        assert_eq!(cfg.hedge_after, Duration::from_micros(DEFAULT_HEDGE_US));
        assert_eq!(cfg.ivf_nprobe, DEFAULT_IVF_NPROBE, "zero probes can answer nothing");
        // A zero wait is a legal setting: dispatch immediately.
        let eager = ServeConfig::from_lookup(|name| {
            (name == "CMR_SERVE_WAIT_US").then(|| "0".to_string())
        });
        assert_eq!(eager.max_wait, Duration::ZERO);
        // Zero retries (first attempt only) and zero hedge (disabled) are legal.
        let lean = ServeConfig::from_lookup(|name| match name {
            "CMR_SERVE_RETRIES" => Some("0".into()),
            "CMR_SERVE_HEDGE_US" => Some("0".into()),
            _ => None,
        });
        assert_eq!(lean.retries, 0);
        assert_eq!(lean.hedge_after, Duration::ZERO);
    }
}
