//! Server configuration and the two serving environment knobs.
//!
//! The only `std::env::var` reads in this crate live in this file (see
//! [`ServeConfig::from_env`]) and are registered with the
//! `env-centralization` lint rule:
//!
//! * `CMR_SERVE_BATCH` — admission-queue micro-batch ceiling,
//! * `CMR_SERVE_WAIT_US` — admission-queue coalescing window in µs.
//!
//! Everything else (timeouts, cache geometry, worker count) is plain struct
//! state with defaults tuned for the integration tests; bins override the
//! fields directly from their CLI flags.

use std::time::Duration;

/// Admission-queue batch ceiling when `CMR_SERVE_BATCH` is unset/invalid.
pub const DEFAULT_MAX_BATCH: usize = 8;
/// Coalescing window when `CMR_SERVE_WAIT_US` is unset/invalid.
pub const DEFAULT_MAX_WAIT_US: u64 = 500;

/// Tunables for [`Server`](crate::Server), the admission queue and the
/// result cache.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest micro-batch the admission queue hands the ranking kernel.
    pub max_batch: usize,
    /// How long the first queued request waits for company before its batch
    /// is dispatched anyway.
    pub max_wait: Duration,
    /// Number of batcher worker threads draining the admission queue.
    pub workers: usize,
    /// Per-connection socket read timeout; a connection that goes quiet
    /// mid-request for this long gets `408 Request Timeout`.
    pub read_timeout: Duration,
    /// Total result-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Largest accepted request body in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line + headers, `431` beyond).
    pub max_head_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: DEFAULT_MAX_BATCH,
            max_wait: Duration::from_micros(DEFAULT_MAX_WAIT_US),
            workers: 2,
            read_timeout: Duration::from_millis(2000),
            cache_capacity: 1024,
            cache_shards: 8,
            max_body_bytes: 1 << 20,
            max_head_bytes: 8 << 10,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the two serving env knobs, resolved through
    /// `lookup` (`env::var` in production, a closure in tests).
    ///
    /// Unset, empty, unparsable or zero values fall back to the defaults —
    /// a misconfigured knob must degrade to a working server, never panic.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(batch) = lookup("CMR_SERVE_BATCH").and_then(|v| v.trim().parse::<usize>().ok())
        {
            if batch >= 1 {
                cfg.max_batch = batch;
            }
        }
        if let Some(us) = lookup("CMR_SERVE_WAIT_US").and_then(|v| v.trim().parse::<u64>().ok()) {
            cfg.max_wait = Duration::from_micros(us);
        }
        cfg
    }

    /// [`from_lookup`](Self::from_lookup) against the process environment:
    /// reads `CMR_SERVE_BATCH` and `CMR_SERVE_WAIT_US`.
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_unset() {
        let cfg = ServeConfig::from_lookup(|_| None);
        assert_eq!(cfg.max_batch, DEFAULT_MAX_BATCH);
        assert_eq!(cfg.max_wait, Duration::from_micros(DEFAULT_MAX_WAIT_US));
    }

    #[test]
    fn knobs_override_defaults() {
        let cfg = ServeConfig::from_lookup(|name| match name {
            "CMR_SERVE_BATCH" => Some(" 32 ".into()),
            "CMR_SERVE_WAIT_US" => Some("1500".into()),
            _ => None,
        });
        assert_eq!(cfg.max_batch, 32);
        assert_eq!(cfg.max_wait, Duration::from_micros(1500));
    }

    #[test]
    fn invalid_or_zero_knobs_fall_back() {
        let cfg = ServeConfig::from_lookup(|name| match name {
            "CMR_SERVE_BATCH" => Some("0".into()),
            "CMR_SERVE_WAIT_US" => Some("soon".into()),
            _ => None,
        });
        assert_eq!(cfg.max_batch, DEFAULT_MAX_BATCH);
        assert_eq!(cfg.max_wait, Duration::from_micros(DEFAULT_MAX_WAIT_US));
        // A zero wait is a legal setting: dispatch immediately.
        let eager = ServeConfig::from_lookup(|name| {
            (name == "CMR_SERVE_WAIT_US").then(|| "0".to_string())
        });
        assert_eq!(eager.max_wait, Duration::ZERO);
    }
}
