//! The admission queue: coalesces concurrently arriving single queries
//! into micro-batches for the ranking kernel.
//!
//! Connection threads [`submit`](Batcher::submit) one job each and block on
//! a private channel. Worker threads drain the queue with a two-phase
//! wait: sleep until *any* job arrives, then linger up to the configured
//! coalescing window (`CMR_SERVE_WAIT_US`) for company, dispatching early
//! the moment `CMR_SERVE_BATCH` jobs are queued. A batch holds only jobs
//! that share `(direction, k)` — those are the axes the kernel batches
//! over — so mixed traffic splits into per-shape batches.
//!
//! Because the engine's batch path is bit-identical to its single-query
//! path (see [`crate::engine`]), coalescing is invisible in the response
//! bytes; it only moves the throughput/latency trade-off.
//!
//! Shutdown is draining: [`shutdown`](Batcher::shutdown) first flips the
//! flag so new submissions are refused with a typed
//! [`ServeError::ShuttingDown`], then wakes the workers, which keep
//! executing until the queue is empty — no accepted job is ever dropped
//! or answered twice.

use crate::engine::{render_hits, Direction, Engine};
use crate::error::ServeError;
use cmr_retrieval::{Embeddings, SearchError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued query plus the channel its rendered response (or the typed
/// search error the HTTP layer maps to a status) goes back on.
struct Job {
    direction: Direction,
    k: usize,
    query: Vec<f32>,
    resp: mpsc::Sender<Result<String, SearchError>>,
}

struct Inner {
    engine: Arc<Engine>,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutting_down: AtomicBool,
    max_batch: usize,
    max_wait: Duration,
}

impl Inner {
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The admission queue plus its worker threads.
pub struct Batcher {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns `workers` batch workers draining into `engine`.
    pub fn new(engine: Arc<Engine>, max_batch: usize, max_wait: Duration, workers: usize) -> Self {
        let inner = Arc::new(Inner {
            engine,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            max_batch: max_batch.max(1),
            max_wait,
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Batcher { inner, workers: Mutex::new(handles) }
    }

    /// Enqueues one query; the returned receiver yields the rendered
    /// response body, or the typed [`SearchError`] the engine refused the
    /// batch with (bad `k`/dimension slip through admission only via
    /// internal callers; the engine no longer panics on them either way).
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] once [`shutdown`](Self::shutdown) has
    /// begun; the job is not queued.
    pub fn submit(
        &self,
        direction: Direction,
        k: usize,
        query: Vec<f32>,
    ) -> Result<mpsc::Receiver<Result<String, SearchError>>, ServeError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.inner.lock_queue();
            // Checked under the queue lock: shutdown() flips the flag under
            // this same lock, so a job admitted here is ordered before the
            // drain decision and cannot be stranded.
            if self.inner.shutting_down.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            q.push_back(Job { direction, k, query, resp: tx });
        }
        // Notify after releasing the queue lock: workers woken here re-check
        // the queue under the mutex themselves, so no wakeup is lost, and
        // notifying lock-free avoids waking a worker straight into a wall.
        // cmr-lint: allow(condvar-discipline) waiters re-check the queue under the mutex; lock-free notify only avoids a pointless contention bounce
        self.inner.cv.notify_one();
        Ok(rx)
    }

    /// Jobs currently queued (diagnostics).
    pub fn queued(&self) -> usize {
        self.inner.lock_queue().len()
    }

    /// Refuses new work, drains everything already admitted, and joins the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let _q = self.inner.lock_queue();
            self.inner.shutting_down.store(true, Ordering::SeqCst);
        }
        // The flag was flipped under the queue lock above, so every waiter
        // woken here re-observes it under the mutex before deciding to exit.
        // cmr-lint: allow(condvar-discipline) waiters re-check shutting_down under the mutex; the flag store is ordered by the lock held above
        self.inner.cv.notify_all();
        // Take the handles out under the lock, join outside it: joining
        // while holding `workers` would block any concurrent shutdown (and
        // Drop runs this path) on threads that can take max_wait to exit.
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().unwrap_or_else(|p| p.into_inner());
            workers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: wait for a first job, linger for company, execute the
/// batch. Exits when shutdown is flagged *and* the queue is empty.
// cmr-lint: allow(panic-path) the q[i] probe is guarded by `i < q.len()` in its loop condition
fn worker_loop(inner: &Inner) {
    loop {
        let mut q = inner.lock_queue();
        // Phase 1: sleep until any job exists (or drain completes).
        loop {
            if !q.is_empty() {
                break;
            }
            if inner.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            q = inner.cv.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        // Phase 2: linger up to max_wait for the batch to fill. During
        // shutdown there is no point waiting for company that can no
        // longer arrive.
        let deadline = Instant::now() + inner.max_wait;
        while q.len() < inner.max_batch && !inner.shutting_down.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = inner
                .cv
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
            if q.is_empty() {
                break; // another worker took the jobs this one lingered for
            }
        }
        let Some(first) = q.pop_front() else {
            continue;
        };
        // Collect queue-mates sharing the batchable shape (direction, k),
        // preserving arrival order for everyone left behind.
        let mut batch = vec![first];
        let mut i = 0;
        while i < q.len() && batch.len() < inner.max_batch {
            let mate = q[i].direction == batch[0].direction && q[i].k == batch[0].k;
            if mate {
                if let Some(job) = q.remove(i) {
                    batch.push(job);
                }
            } else {
                i += 1;
            }
        }
        let more_work = !q.is_empty();
        drop(q);
        if more_work {
            // Leftover jobs (other shapes) should not wait for this batch
            // to finish executing before another worker picks them up. The
            // queue guard was dropped just above on purpose: the woken
            // worker re-checks the queue under the mutex, so the handoff is
            // race-free without re-serializing on the lock here.
            // cmr-lint: allow(condvar-discipline) woken worker re-checks the queue under the mutex; guard deliberately dropped before the handoff
            inner.cv.notify_one();
        }
        execute_batch(&inner.engine, batch);
    }
}

/// Runs one micro-batch through the engine and answers every job.
fn execute_batch(engine: &Engine, batch: Vec<Job>) {
    let _span = cmr_obs::span("serve.batch_exec_s");
    if cmr_obs::enabled() {
        cmr_obs::counter_add("serve.batches", 1);
        cmr_obs::counter_add("serve.batched_requests", batch.len() as u64);
        cmr_obs::observe("serve.batch_size", batch.len() as f64);
    }
    let mut queries = Embeddings::with_capacity(engine.dim(), batch.len());
    for job in &batch {
        queries.push(&job.query);
    }
    match engine.search_batch(batch[0].direction, &queries, batch[0].k) {
        Ok(results) => {
            for (job, hits) in batch.iter().zip(results) {
                // A receiver that hung up (client gone) is not an error here.
                let _ = job.resp.send(Ok(render_hits(&hits)));
            }
        }
        Err(e) => {
            // Every job in the batch shares the refused shape; answer each
            // with the typed error instead of dropping the senders (a
            // dropped sender reads as ShuttingDown at the HTTP layer).
            for job in &batch {
                let _ = job.resp.send(Err(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn engine(seed: u64) -> Arc<Engine> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut gallery = |n: usize| {
            Embeddings::new(4, (0..n * 4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .l2_normalized()
        };
        Arc::new(Engine::exact(gallery(30), gallery(20)).expect("valid galleries"))
    }

    #[test]
    fn single_submit_round_trips() {
        let e = engine(1);
        let reference =
            render_hits(&e.search_one(Direction::ImToRec, &[1.0, 0.0, 0.0, 0.0], 3).unwrap());
        let b = Batcher::new(e, 4, Duration::from_micros(200), 1);
        let rx = b.submit(Direction::ImToRec, 3, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(rx.recv().unwrap().unwrap(), reference);
        b.shutdown();
    }

    #[test]
    fn concurrent_submits_all_answer_identically_to_reference() {
        let e = engine(2);
        let b = Arc::new(Batcher::new(Arc::clone(&e), 8, Duration::from_millis(5), 2));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let queries: Vec<Vec<f32>> = (0..24)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let handles: Vec<_> = queries
            .iter()
            .cloned()
            .map(|qv| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    b.submit(Direction::RecToIm, 5, qv).unwrap().recv().unwrap().unwrap()
                })
            })
            .collect();
        for (h, qv) in handles.into_iter().zip(&queries) {
            let got = h.join().unwrap();
            let want = render_hits(&e.search_one(Direction::RecToIm, qv, 5).unwrap());
            assert_eq!(got, want);
        }
        b.shutdown();
    }

    #[test]
    fn mixed_shapes_are_never_batched_together() {
        // Different k values must still each get correct (k-length) answers.
        let e = engine(4);
        let b = Arc::new(Batcher::new(Arc::clone(&e), 16, Duration::from_millis(5), 1));
        let handles: Vec<_> = (1..=6)
            .map(|k| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let rx = b.submit(Direction::ImToRec, k, vec![0.5, 0.5, 0.0, 0.0]).unwrap();
                    (k, rx.recv().unwrap().unwrap())
                })
            })
            .collect();
        for h in handles {
            let (k, body) = h.join().unwrap();
            let want = render_hits(
                &e.search_one(Direction::ImToRec, &[0.5, 0.5, 0.0, 0.0], k).unwrap(),
            );
            assert_eq!(body, want, "k={k}");
        }
        b.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_refuses_new_ones() {
        let e = engine(5);
        // Long linger window so jobs are still queued when shutdown starts.
        let b = Batcher::new(e, 64, Duration::from_secs(5), 1);
        let rxs: Vec<_> = (0..10)
            .map(|_| b.submit(Direction::ImToRec, 2, vec![1.0, 0.0, 0.0, 0.0]).unwrap())
            .collect();
        b.shutdown();
        for rx in rxs {
            assert!(rx.recv().is_ok(), "queued job dropped during drain");
        }
        assert!(matches!(
            b.submit(Direction::ImToRec, 2, vec![1.0, 0.0, 0.0, 0.0]),
            Err(ServeError::ShuttingDown)
        ));
    }
}
