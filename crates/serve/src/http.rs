//! A minimal first-party HTTP/1.1 layer.
//!
//! Just enough protocol for the serving API: request-line + headers +
//! `Content-Length` bodies, keep-alive by default, `Connection: close`
//! honoured. No chunked encoding, no pipelining (a client must await each
//! response before sending the next request on the connection), no TLS.
//!
//! Reading goes through the caller's `BufReader` so bytes past the current
//! request head stay buffered for the body read and the next keep-alive
//! request. Socket read timeouts surface as typed errors: quiet *between*
//! requests is a clean [`ServeError::IdleClose`], quiet *mid-request* (the
//! slow-loris shape) is [`ServeError::RequestTimeout`].

use crate::error::ServeError;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Head/body size ceilings enforced while parsing.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Largest request head (request line + headers + blank line) in bytes.
    pub max_head_bytes: usize,
    /// Largest request body in bytes.
    pub max_body_bytes: usize,
}

/// A parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Headers as `(lowercased_name, trimmed_value)`, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name` (exact match, no decoding).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// `true` when the client asked for `Connection: close`.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Classifies a transport error by *when* it happened: quiet before any
/// byte of the request is an idle keep-alive close; quiet after is the
/// slow-loris timeout.
fn classify_io(e: io::Error, started: bool) -> ServeError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            if started {
                ServeError::RequestTimeout
            } else {
                ServeError::IdleClose
            }
        }
        _ => ServeError::Io(e),
    }
}

/// Reads one request from `r`, enforcing `limits`.
///
/// # Errors
/// * [`ServeError::IdleClose`] — EOF or timeout before the first byte,
/// * [`ServeError::RequestTimeout`] — timeout after at least one byte,
/// * [`ServeError::HeadersTooLarge`] / [`ServeError::PayloadTooLarge`] —
///   a ceiling was hit,
/// * [`ServeError::BadRequest`] — malformed request line or headers,
/// * [`ServeError::Io`] — the peer vanished mid-request or the transport
///   failed.
pub fn read_request<R: Read>(
    r: &mut BufReader<R>,
    limits: &Limits,
) -> Result<Request, ServeError> {
    let head = read_head(r, limits)?;
    let (method, path, query, headers) = parse_head(&head)?;

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ServeError::BadRequest(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(ServeError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(|e| classify_io(e, true))?;
    }
    Ok(Request { method, path, query, headers, body })
}

/// Accumulates bytes up to and including the `\r\n\r\n` head terminator,
/// leaving everything after it buffered in `r`.
fn read_head<R: Read>(r: &mut BufReader<R>, limits: &Limits) -> Result<Vec<u8>, ServeError> {
    let mut head: Vec<u8> = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) => return Err(classify_io(e, !head.is_empty())),
        };
        if buf.is_empty() {
            // EOF: clean between requests, a vanished peer mid-head.
            return if head.is_empty() {
                Err(ServeError::IdleClose)
            } else {
                Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-request",
                )))
            };
        }
        let mut used = 0;
        let mut done = false;
        for &b in buf {
            head.push(b);
            used += 1;
            if head.ends_with(b"\r\n\r\n") {
                done = true;
                break;
            }
            if head.len() > limits.max_head_bytes {
                return Err(ServeError::HeadersTooLarge);
            }
        }
        r.consume(used);
        if done {
            return Ok(head);
        }
    }
}

type Head = (String, String, String, Vec<(String, String)>);

/// Splits a raw head into `(method, path, query, headers)`.
fn parse_head(head: &[u8]) -> Result<Head, ServeError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| ServeError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ServeError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ServeError::BadRequest(format!("unsupported version {version:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break; // the blank line terminating the head
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path, query, headers))
}

/// Writes a complete response: status line, `Content-Type`,
/// `Content-Length`, `Connection`, body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Head and body go out in ONE write: a small trailing segment after the
    // head would otherwise stall on Nagle + delayed-ACK (~40ms) per response.
    let mut wire = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    wire.extend_from_slice(body);
    w.write_all(&wire)?;
    w.flush()
}

/// Writes the mapped error response for `err`, when it has one; a
/// closing-only error ([`ServeError::status`] = `None`) writes nothing.
/// Returns whether the connection may stay open afterwards (it never may).
pub fn write_error(w: &mut impl Write, err: &ServeError) -> io::Result<()> {
    if let Some((status, reason)) = err.status() {
        let body = format!("{err}\n");
        write_response(w, status, reason, "text/plain", body.as_bytes(), false)?;
    }
    Ok(())
}

/// A parsed HTTP/1.1 response, the client half of the protocol (used by
/// the load generator, the serving benchmark and the integration tests).
#[derive(Debug)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers as `(lowercased_name, trimmed_value)`, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Response {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Writes one client request with a `Content-Length` body.
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<()> {
    // Single write for the same Nagle/delayed-ACK reason as `write_response`.
    let mut wire =
        format!("{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes();
    wire.extend_from_slice(body);
    w.write_all(&wire)?;
    w.flush()
}

/// Writes one client request that asks the server to close afterwards
/// (`Connection: close`). The router sends each shard attempt on a fresh
/// connection, and the close handshake is what lets the fault proxy treat
/// upstream EOF as end-of-response.
pub fn write_oneshot_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut wire = format!(
        "{method} {target} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    wire.extend_from_slice(body);
    w.write_all(&wire)?;
    w.flush()
}

/// Reads one response from `r` (same head-size limits as requests, via
/// `limits`).
///
/// # Errors
/// The same taxonomy as [`read_request`]; a malformed status line is a
/// [`ServeError::BadRequest`].
pub fn read_response<R: Read>(
    r: &mut BufReader<R>,
    limits: &Limits,
) -> Result<Response, ServeError> {
    let head = read_head(r, limits)?;
    let text = std::str::from_utf8(&head)
        .map_err(|_| ServeError::BadRequest("response head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ServeError::BadRequest(format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ServeError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(|e| classify_io(e, true))?;
    }
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const LIMITS: Limits = Limits { max_head_bytes: 1024, max_body_bytes: 64 };

    fn parse(bytes: &[u8]) -> Result<Request, ServeError> {
        read_request(&mut BufReader::new(Cursor::new(bytes.to_vec())), &LIMITS)
    }

    #[test]
    fn parses_post_with_body_query_and_headers() {
        let req = parse(
            b"POST /v1/search/im2rec?k=5 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/search/im2rec");
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn keep_alive_reads_two_requests_from_one_stream() {
        let mut r = BufReader::new(Cursor::new(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
                .to_vec(),
        ));
        let first = read_request(&mut r, &LIMITS).unwrap();
        assert!(!first.wants_close());
        let second = read_request(&mut r, &LIMITS).unwrap();
        assert!(second.wants_close());
        assert!(matches!(read_request(&mut r, &LIMITS), Err(ServeError::IdleClose)));
    }

    #[test]
    fn eof_before_any_byte_is_idle_close() {
        assert!(matches!(parse(b""), Err(ServeError::IdleClose)));
    }

    #[test]
    fn eof_mid_head_and_mid_body_are_transport_errors() {
        assert!(matches!(parse(b"POST /x HTTP/1.1\r\nConte"), Err(ServeError::Io(_))));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ServeError::Io(_))
        ));
    }

    #[test]
    fn oversized_head_and_body_hit_their_ceilings() {
        let mut big_head = b"GET /x HTTP/1.1\r\nPad: ".to_vec();
        big_head.extend(std::iter::repeat_n(b'a', 2000));
        big_head.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&big_head), Err(ServeError::HeadersTooLarge)));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"),
            Err(ServeError::PayloadTooLarge)
        ));
    }

    #[test]
    fn malformed_request_lines_and_headers_are_bad_requests() {
        for bytes in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x HTTP/9.9\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: tiny\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(bytes), Err(ServeError::BadRequest(_))),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    /// A reader whose timeouts surface as `WouldBlock`, like a `TcpStream`
    /// with a read timeout.
    struct TimeoutAfter {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for TimeoutAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timed out"));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_before_any_byte_is_idle_after_some_bytes_is_request_timeout() {
        let mut idle = BufReader::new(TimeoutAfter { data: Vec::new(), pos: 0 });
        assert!(matches!(read_request(&mut idle, &LIMITS), Err(ServeError::IdleClose)));

        let mut loris =
            BufReader::new(TimeoutAfter { data: b"POST /x HT".to_vec(), pos: 0 });
        assert!(matches!(read_request(&mut loris, &LIMITS), Err(ServeError::RequestTimeout)));
    }

    #[test]
    fn client_request_and_response_roundtrip_through_the_server_format() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/search/im2rec?k=2", b"\x00\x00\x80?").unwrap();
        let req = parse(&wire).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"\x00\x00\x80?");

        let mut wire = Vec::new();
        write_response(&mut wire, 404, "Not Found", "text/plain", b"nope\n", false).unwrap();
        let resp =
            read_response(&mut BufReader::new(Cursor::new(wire)), &LIMITS).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.body, b"nope\n");
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}"
        );
    }

    #[test]
    fn error_responses_carry_the_mapped_status() {
        let mut out = Vec::new();
        write_error(&mut out, &ServeError::PayloadTooLarge).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 413 Payload Too Large\r\n"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");

        let mut silent = Vec::new();
        write_error(&mut silent, &ServeError::IdleClose).unwrap();
        assert!(silent.is_empty(), "closing errors write nothing");
    }
}
