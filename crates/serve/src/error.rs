//! The serving error taxonomy.
//!
//! Every failure a connection can hit maps to exactly one variant, and
//! every variant maps to exactly one HTTP status — the fault-injection
//! suite asserts both directions. Nothing here panics; connection handlers
//! convert any `ServeError` into a response (or a silent close for
//! `IdleClose`) and keep the server alive.

use std::fmt;
use std::io;

/// A typed serving failure, each with a fixed HTTP status mapping.
#[derive(Debug)]
pub enum ServeError {
    /// Malformed request line, headers, query parameters or body (400).
    BadRequest(String),
    /// Unknown path (404).
    NotFound,
    /// Known path, wrong method (405).
    MethodNotAllowed,
    /// The connection went quiet mid-request past the read timeout (408).
    RequestTimeout,
    /// Body longer than the configured ceiling (413).
    PayloadTooLarge,
    /// Request head longer than the configured ceiling (431).
    HeadersTooLarge,
    /// The server is draining for shutdown and admits no new work (503).
    ShuttingDown,
    /// No shard could answer the query — every breaker open, every attempt
    /// failed or timed out (503). Distinct from [`Self::ShuttingDown`] so
    /// the chaos suite can tell "draining by choice" from "fleet down".
    Unavailable(String),
    /// Clean end of a keep-alive connection (EOF or idle timeout between
    /// requests): close the socket, send nothing.
    IdleClose,
    /// Transport failure talking to the peer; the connection is beyond a
    /// response, so close.
    Io(io::Error),
}

impl ServeError {
    /// The HTTP status line for this error.
    ///
    /// [`IdleClose`](Self::IdleClose) and [`Io`](Self::Io) have no
    /// meaningful response — the peer is gone — and report `None`.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ServeError::BadRequest(_) => Some((400, "Bad Request")),
            ServeError::NotFound => Some((404, "Not Found")),
            ServeError::MethodNotAllowed => Some((405, "Method Not Allowed")),
            ServeError::RequestTimeout => Some((408, "Request Timeout")),
            ServeError::PayloadTooLarge => Some((413, "Payload Too Large")),
            ServeError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            ServeError::ShuttingDown => Some((503, "Service Unavailable")),
            ServeError::Unavailable(_) => Some((503, "Service Unavailable")),
            ServeError::IdleClose | ServeError::Io(_) => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NotFound => write!(f, "not found"),
            ServeError::MethodNotAllowed => write!(f, "method not allowed"),
            ServeError::RequestTimeout => write!(f, "request timeout"),
            ServeError::PayloadTooLarge => write!(f, "payload too large"),
            ServeError::HeadersTooLarge => write!(f, "request head too large"),
            ServeError::ShuttingDown => write!(f, "shutting down"),
            ServeError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            ServeError::IdleClose => write!(f, "idle connection closed"),
            ServeError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Search-layer errors surface with their natural HTTP semantics: a zero
/// `k`/`nprobe` or a wrong-dimension query is the client's fault (400),
/// while an empty index — possible when an engine boots from a `CMRIVF1`
/// file — means this process cannot answer anything right now (503).
impl From<cmr_retrieval::SearchError> for ServeError {
    fn from(e: cmr_retrieval::SearchError) -> Self {
        match e {
            cmr_retrieval::SearchError::EmptyIndex => ServeError::Unavailable(e.to_string()),
            _ => ServeError::BadRequest(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_responding_variant_has_its_documented_status() {
        let statuses: Vec<u16> = [
            ServeError::BadRequest("x".into()),
            ServeError::NotFound,
            ServeError::MethodNotAllowed,
            ServeError::RequestTimeout,
            ServeError::PayloadTooLarge,
            ServeError::HeadersTooLarge,
            ServeError::ShuttingDown,
            ServeError::Unavailable("fleet down".into()),
        ]
        .iter()
        .map(|e| e.status().expect("responding variant").0)
        .collect();
        // The two 503s are intentionally the same wire status (both mean
        // "try again later"); every other variant keeps a distinct code.
        assert_eq!(statuses, [400, 404, 405, 408, 413, 431, 503, 503]);
    }

    #[test]
    fn search_errors_map_to_client_fault_or_unavailable() {
        use cmr_retrieval::SearchError;
        for e in [
            SearchError::ZeroK,
            SearchError::ZeroProbe,
            SearchError::DimMismatch { expected: 8, got: 4 },
        ] {
            assert_eq!(ServeError::from(e).status(), Some((400, "Bad Request")));
        }
        assert_eq!(
            ServeError::from(SearchError::EmptyIndex).status(),
            Some((503, "Service Unavailable"))
        );
    }

    #[test]
    fn closing_variants_have_no_status() {
        assert!(ServeError::IdleClose.status().is_none());
        assert!(ServeError::Io(io::Error::other("gone")).status().is_none());
    }
}
