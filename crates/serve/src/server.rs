//! The TCP front end: accept loop, per-connection threads, routing,
//! cache-then-batcher request flow, and graceful shutdown.
//!
//! ## Protocol
//!
//! * `GET /healthz` — liveness probe: `200 ok` for as long as the process
//!   runs, even while draining or fully degraded (restart-decision signal).
//! * `GET /readyz` — readiness probe: `503` while draining or while more
//!   than half the shard breakers are open, else `200 ready` (routing
//!   decision signal).
//! * `POST /v1/search/im2rec?k=N` / `POST /v1/search/rec2im?k=N` — the body
//!   is one query embedding as raw little-endian `f32` (so exactly
//!   `4 × dim` bytes); the response is
//!   `{"hits":[{"index":…,"similarity":…},…]}`. `k` defaults to 10. A
//!   sharded front end with missing shards appends
//!   `"degraded":true,"coverage":…` fields (see [`crate::router::Routed`]).
//!
//! Connections are HTTP/1.1 keep-alive with a per-connection read timeout;
//! every failure maps to a typed [`ServeError`] status (see
//! [`crate::error`]). Each request is answered from the sharded result
//! cache when possible and otherwise submitted to the admission queue,
//! which batches it with concurrent arrivals before ranking.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the accept loop, lets every connection
//! thread finish its in-flight request (idle keep-alive connections close
//! at their next read-timeout tick, so shutdown takes at most roughly one
//! `read_timeout`), then drains the admission queue — no admitted request
//! is dropped.

use crate::batch::Batcher;
use crate::cache::ShardedCache;
use crate::config::ServeConfig;
use crate::engine::{Direction, Engine};
use crate::error::ServeError;
use crate::http::{self, Limits, Request};
use crate::router::Router;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard ceiling on `k` per request, against memory-amplification abuse.
pub const MAX_K: usize = 1000;

/// How a server answers search queries: a local engine behind the
/// admission queue, or a scatter-gather router over a shard fleet.
enum Dispatch {
    /// Single-engine serving: the admission queue batches into `engine`.
    Local { engine: Arc<Engine>, batcher: Batcher },
    /// Sharded serving: scatter-gather over worker shards.
    Sharded { router: Router },
}

impl Dispatch {
    fn dim(&self) -> usize {
        match self {
            Dispatch::Local { engine, .. } => engine.dim(),
            Dispatch::Sharded { router } => router.dim(),
        }
    }
}

/// A complete routed response, ready to write.
struct Reply {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
}

impl Reply {
    fn ok(content_type: &'static str, body: String) -> Reply {
        Reply { status: 200, reason: "OK", content_type, body }
    }

    fn unavailable(body: &str) -> Reply {
        Reply {
            status: 503,
            reason: "Service Unavailable",
            content_type: "text/plain",
            body: body.to_string(),
        }
    }
}

/// Shared per-server state every connection thread sees.
struct Ctx {
    dispatch: Dispatch,
    cache: ShardedCache,
    cfg: ServeConfig,
    shutdown: AtomicBool,
}

/// A running retrieval server; dropping it shuts it down.
pub struct Server {
    ctx: Arc<Ctx>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `engine` with
    /// `cfg`.
    ///
    /// # Errors
    /// Propagates socket bind/configuration failures.
    pub fn start(engine: Engine, cfg: ServeConfig, addr: &str) -> io::Result<Server> {
        let engine = Arc::new(engine);
        let batcher =
            Batcher::new(Arc::clone(&engine), cfg.max_batch, cfg.max_wait, cfg.workers);
        Self::start_with(Dispatch::Local { engine, batcher }, cfg, addr)
    }

    /// Binds `addr` and starts a sharded front end scatter-gathering
    /// through `router` (build one over a
    /// [`ShardFleet`](crate::shard::ShardFleet)'s specs).
    ///
    /// # Errors
    /// Propagates socket bind/configuration failures.
    pub fn start_sharded(router: Router, cfg: ServeConfig, addr: &str) -> io::Result<Server> {
        Self::start_with(Dispatch::Sharded { router }, cfg, addr)
    }

    fn start_with(dispatch: Dispatch, cfg: ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(Ctx {
            dispatch,
            cache: ShardedCache::new(cfg.cache_capacity, cfg.cache_shards),
            cfg,
            shutdown: AtomicBool::new(false),
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept_handle = std::thread::spawn(move || accept_loop(&listener, &accept_ctx));
        cmr_obs::log(&format!("cmr-serve: listening on {local_addr}"));
        Ok(Server { ctx, local_addr, accept_handle: Some(accept_handle) })
    }

    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `(hits, misses)` of the result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.ctx.cache.stats()
    }

    /// Entries currently resident in the result cache (diagnostics; the
    /// -0.0 canonicalization regression test counts them).
    pub fn cache_len(&self) -> usize {
        self.ctx.cache.len()
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests, drain
    /// the admission queue. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Dispatch::Local { batcher, .. } = &self.ctx.dispatch {
            batcher.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Polls for connections until shutdown, then joins the handlers it
/// spawned.
fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if cmr_obs::enabled() {
                    cmr_obs::counter_add("serve.connections", 1);
                }
                let ctx = Arc::clone(ctx);
                handlers.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake): back
                // off briefly and keep serving.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serves one keep-alive connection until close, error, or shutdown.
fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    if stream.set_read_timeout(Some(ctx.cfg.read_timeout)).is_err() {
        return;
    }
    // Responses are small; Nagle would add delayed-ACK stalls per reply.
    let _ = stream.set_nodelay(true);
    let limits = Limits {
        max_head_bytes: ctx.cfg.max_head_bytes,
        max_body_bytes: ctx.cfg.max_body_bytes,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader, &limits) {
            Ok(req) => req,
            Err(err) => {
                if cmr_obs::enabled() && err.status().is_some() {
                    cmr_obs::counter_add("serve.errors", 1);
                }
                let _ = http::write_error(reader.get_mut(), &err);
                return;
            }
        };
        let span = cmr_obs::span("serve.request_latency_s");
        if cmr_obs::enabled() {
            cmr_obs::counter_add("serve.requests", 1);
        }
        let shutting_down = ctx.shutdown.load(Ordering::SeqCst);
        let keep_alive = !req.wants_close() && !shutting_down;
        let outcome = route(&req, ctx);
        drop(span);
        match outcome {
            Ok(reply) => {
                if http::write_response(
                    reader.get_mut(),
                    reply.status,
                    reply.reason,
                    reply.content_type,
                    reply.body.as_bytes(),
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Err(err) => {
                if cmr_obs::enabled() && err.status().is_some() {
                    cmr_obs::counter_add("serve.errors", 1);
                }
                let _ = http::write_error(reader.get_mut(), &err);
                return;
            }
        }
    }
}

/// Dispatches one parsed request to a complete [`Reply`].
fn route(req: &Request, ctx: &Ctx) -> Result<Reply, ServeError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(Reply::ok("text/plain", "ok\n".to_string())),
        (_, "/healthz") => Err(ServeError::MethodNotAllowed),
        ("GET", "/readyz") => Ok(readiness(ctx)),
        (_, "/readyz") => Err(ServeError::MethodNotAllowed),
        (method, path) => match path.strip_prefix("/v1/search/").and_then(Direction::from_str) {
            Some(direction) if method == "POST" => search(req, ctx, direction),
            Some(_) => Err(ServeError::MethodNotAllowed),
            None => Err(ServeError::NotFound),
        },
    }
}

/// The readiness verdict: draining and mostly-broken fleets are not ready
/// (a load balancer should route elsewhere), but stay *alive* — `/healthz`
/// still answers 200, so an orchestrator does not restart a process that
/// is merely waiting out a bad patch.
fn readiness(ctx: &Ctx) -> Reply {
    if ctx.shutdown.load(Ordering::SeqCst) {
        return Reply::unavailable("draining\n");
    }
    if let Dispatch::Sharded { router } = &ctx.dispatch {
        let open = router.open_breakers();
        let total = router.shards();
        if open * 2 > total {
            return Reply::unavailable(&format!("degraded: {open}/{total} breakers open\n"));
        }
    }
    Reply::ok("text/plain", "ready\n".to_string())
}

/// The search endpoint: validate, consult the cache, else rank — through
/// the admission queue (local) or the scatter-gather router (sharded).
// cmr-lint: allow(panic-path) chunks_exact(4) guarantees the c[0..4] probes are in range
fn search(req: &Request, ctx: &Ctx, direction: Direction) -> Result<Reply, ServeError> {
    let k = match req.query_param("k") {
        None => 10,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if (1..=MAX_K).contains(&k) => k,
            _ => {
                return Err(ServeError::BadRequest(format!(
                    "k must be an integer in 1..={MAX_K}, got {raw:?}"
                )))
            }
        },
    };
    let dim = ctx.dispatch.dim();
    if req.body.len() != dim * 4 {
        return Err(ServeError::BadRequest(format!(
            "query body must be {} bytes ({dim} little-endian f32), got {}",
            dim * 4,
            req.body.len()
        )));
    }
    // Canonicalise -0.0 to +0.0 while parsing: the two compare equal and
    // rank identically, but their bit patterns differ, so keying the cache
    // on raw body bytes would store duplicate entries for what is the same
    // query. Canonical floats feed both the key and the engine, keeping
    // response bytes identical across the two spellings too.
    let query: Vec<f32> = req
        .body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .map(|x| if x == 0.0 { 0.0f32 } else { x })
        .collect();
    if query.iter().any(|x| !x.is_finite()) {
        return Err(ServeError::BadRequest("query contains non-finite values".into()));
    }

    // Canonical wire form of the query, reused for the cache key and the
    // sharded fan-out so every layer below sees one spelling of zero.
    let mut canon_body = Vec::with_capacity(req.body.len());
    for x in &query {
        canon_body.extend_from_slice(&x.to_le_bytes());
    }

    // Cache key: direction tag, k, then the canonicalised query bytes.
    let mut key = Vec::with_capacity(1 + 8 + canon_body.len());
    key.push(direction.tag());
    key.extend_from_slice(&(k as u64).to_le_bytes());
    key.extend_from_slice(&canon_body);
    if let Some(body) = ctx.cache.get(&key) {
        if cmr_obs::enabled() {
            cmr_obs::counter_add("serve.cache.hits", 1);
        }
        return Ok(Reply::ok("application/json", body));
    }
    if cmr_obs::enabled() {
        cmr_obs::counter_add("serve.cache.misses", 1);
    }

    match &ctx.dispatch {
        Dispatch::Local { batcher, .. } => {
            let rx = batcher.submit(direction, k, query)?;
            // A dropped sender means the drain finished without this job,
            // which submit()'s shutdown check rules out — map it defensively.
            // An inner Err is the engine's typed refusal (e.g. EmptyIndex on
            // an index booted from disk): map to its status, cache nothing.
            let body = rx.recv().map_err(|_| ServeError::ShuttingDown)??;
            ctx.cache.insert(&key, body.clone());
            Ok(Reply::ok("application/json", body))
        }
        Dispatch::Sharded { router } => {
            let routed = router.search(direction, k, &canon_body)?;
            let body = routed.render();
            // A degraded body must never be cached: the missing shards'
            // hits would keep haunting responses after the fleet recovers.
            if !routed.degraded() {
                ctx.cache.insert(&key, body.clone());
            }
            Ok(Reply::ok("application/json", body))
        }
    }
}
