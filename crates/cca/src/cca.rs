//! Canonical Correlation Analysis via Cholesky whitening.

use cmr_linalg::{
    cholesky, cross_covariance, eigh, mean_rows, solve_lower_triangular,
    solve_upper_triangular, Mat,
};

/// Why a [`Cca::fit`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcaError {
    /// The regularised auto-covariance of the named modality is not positive
    /// definite; raise `reg`.
    NotPositiveDefinite {
        /// `"x"` or `"y"` — which modality's covariance failed.
        modality: &'static str,
    },
}

impl std::fmt::Display for CcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcaError::NotPositiveDefinite { modality } => write!(
                f,
                "Cca::fit: regularised Σ{modality}{modality} is not positive definite — raise reg"
            ),
        }
    }
}

impl std::error::Error for CcaError {}

/// A fitted CCA model.
///
/// Given paired samples `X: (n, dx)`, `Y: (n, dy)`, finds `Wx: (dx, k)`,
/// `Wy: (dy, k)` maximising `corr(X·wx_i, Y·wy_i)` with mutually
/// uncorrelated components. Projections optionally weight each component by
/// its canonical correlation, which is the standard trick for retrieval
/// (strongly correlated directions should dominate the cosine distance).
pub struct Cca {
    mean_x: Vec<f64>,
    mean_y: Vec<f64>,
    wx: Mat,
    wy: Mat,
    /// Canonical correlations, descending, one per component.
    pub correlations: Vec<f64>,
    /// Weight projected components by their canonical correlation.
    pub weight_by_correlation: bool,
}

impl Cca {
    /// Fits CCA with `k` components and ridge regularisation `reg` on both
    /// auto-covariances (needed whenever `n < d` or features are collinear).
    ///
    /// Returns [`CcaError::NotPositiveDefinite`] when a regularised
    /// covariance has no Cholesky factor (increase `reg`).
    ///
    /// # Panics
    /// Panics if the samples are unpaired or `k` exceeds `min(dx, dy)` —
    /// caller bugs, not data conditions.
    // cmr-lint: allow(panic-path) documented split: caller bugs panic, data conditions return CcaError
    pub fn fit(x: &Mat, y: &Mat, k: usize, reg: f64) -> Result<Self, CcaError> {
        assert_eq!(x.rows, y.rows, "Cca::fit: unpaired samples");
        assert!(
            k >= 1 && k <= x.cols.min(y.cols),
            "Cca::fit: k={k} out of range 1..={}",
            x.cols.min(y.cols)
        );
        let mean_x = mean_rows(x);
        let mean_y = mean_rows(y);

        let mut cxx = cross_covariance(x, x);
        let mut cyy = cross_covariance(y, y);
        let cxy = cross_covariance(x, y);
        cxx.add_diag(reg);
        cyy.add_diag(reg);

        let lx = cholesky(&cxx)
            .ok_or(CcaError::NotPositiveDefinite { modality: "x" })?;
        let ly = cholesky(&cyy)
            .ok_or(CcaError::NotPositiveDefinite { modality: "y" })?;

        // M = Lx⁻¹ · Σxy · Ly⁻ᵀ  (whitened cross-covariance)
        let m_left = solve_lower_triangular(&lx, &cxy); // Lx⁻¹ Σxy : (dx, dy)
        // right-solve against Lyᵀ: (Ly⁻¹ · m_leftᵀ)ᵀ
        let m = solve_lower_triangular(&ly, &m_left.t()).t(); // (dx, dy)

        // SVD of M via the symmetric eigenproblem of MᵀM.
        let mtm = m.t().matmul(&m); // (dy, dy)
        let eig = eigh(&mtm);
        let mut correlations = Vec::with_capacity(k);
        let dy = y.cols;
        let mut v = Mat::zeros(dy, k);
        for c in 0..k {
            let lam = eig.values[c].max(0.0);
            correlations.push(lam.sqrt().min(1.0));
            for r in 0..dy {
                v.set(r, c, eig.vectors.get(r, c));
            }
        }
        // U = M·V·diag(1/σ)
        let mut u = m.matmul(&v); // (dx, k)
        for (c, corr) in correlations.iter().enumerate() {
            let s = corr.max(1e-12);
            for r in 0..u.rows {
                u.set(r, c, u.get(r, c) / s);
            }
        }
        // Back from whitened to original coordinates: Wx = Lx⁻ᵀ·U, Wy = Ly⁻ᵀ·V
        let wx = solve_upper_triangular(&lx.t(), &u);
        let wy = solve_upper_triangular(&ly.t(), &v);

        Ok(Self { mean_x, mean_y, wx, wy, correlations, weight_by_correlation: true })
    }

    /// Number of canonical components.
    pub fn k(&self) -> usize {
        self.correlations.len()
    }

    fn project(&self, data: &Mat, mean: &[f64], w: &Mat) -> Mat {
        // cmr-lint: allow(panic-path) the fitted model carries the dims the public transform APIs document
        assert_eq!(data.cols, mean.len(), "Cca::project: dimension mismatch");
        let mut centred = data.clone();
        for r in 0..centred.rows {
            for (v, m) in centred.row_mut(r).iter_mut().zip(mean) {
                *v -= m;
            }
        }
        let mut proj = centred.matmul(w);
        if self.weight_by_correlation {
            for r in 0..proj.rows {
                for (v, &c) in proj.row_mut(r).iter_mut().zip(&self.correlations) {
                    *v *= c;
                }
            }
        }
        proj
    }

    /// Projects X-modality samples into the shared space.
    pub fn project_x(&self, x: &Mat) -> Mat {
        self.project(x, &self.mean_x, &self.wx)
    }

    /// Projects Y-modality samples into the shared space.
    pub fn project_y(&self, y: &Mat) -> Mat {
        self.project(y, &self.mean_y, &self.wy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Builds paired samples sharing a latent `z`: x = A·z + εx, y = B·z + εy.
    fn correlated_pair(
        n: usize,
        dz: usize,
        dx: usize,
        dy: usize,
        noise: f64,
        seed: u64,
    ) -> (Mat, Mat) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let a = Mat::new(dz, dx, (0..dz * dx).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Mat::new(dz, dy, (0..dz * dy).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let mut x = Mat::zeros(n, dx);
        let mut y = Mat::zeros(n, dy);
        for i in 0..n {
            let z: Vec<f64> = (0..dz).map(|_| rng.gen_range(-1.0..1.0)).collect();
            for j in 0..dx {
                let mut s = 0.0;
                for (k, &zv) in z.iter().enumerate() {
                    s += zv * a.get(k, j);
                }
                x.set(i, j, s + noise * rng.gen_range(-1.0..1.0));
            }
            for j in 0..dy {
                let mut s = 0.0;
                for (k, &zv) in z.iter().enumerate() {
                    s += zv * b.get(k, j);
                }
                y.set(i, j, s + noise * rng.gen_range(-1.0..1.0));
            }
        }
        (x, y)
    }

    #[test]
    fn recovers_strong_correlations() {
        let (x, y) = correlated_pair(400, 3, 6, 5, 0.05, 1);
        let cca = Cca::fit(&x, &y, 3, 1e-4).unwrap();
        assert!(
            cca.correlations[0] > 0.95,
            "top canonical correlation {:?}",
            cca.correlations
        );
        assert!(cca.correlations[2] > 0.8, "{:?}", cca.correlations);
    }

    #[test]
    fn projections_of_pairs_correlate() {
        let (x, y) = correlated_pair(300, 2, 5, 4, 0.1, 2);
        let cca = Cca::fit(&x, &y, 2, 1e-4).unwrap();
        let px = cca.project_x(&x);
        let py = cca.project_y(&y);
        // empirical correlation of the first component
        let xs: Vec<f64> = (0..px.rows).map(|r| px.get(r, 0)).collect();
        let ys: Vec<f64> = (0..py.rows).map(|r| py.get(r, 0)).collect();
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let cov: f64 =
            xs.iter().zip(&ys).map(|(a, b)| (a - mx) * (b - my)).sum::<f64>();
        let vx: f64 = xs.iter().map(|a| (a - mx).powi(2)).sum::<f64>();
        let vy: f64 = ys.iter().map(|b| (b - my).powi(2)).sum::<f64>();
        let corr = cov / (vx * vy).sqrt();
        assert!(corr.abs() > 0.9, "projected correlation {corr}");
    }

    /// Retrieval with CCA projections beats chance by a wide margin on data
    /// with a shared latent — the reason it is a meaningful baseline.
    #[test]
    fn retrieval_beats_chance() {
        let (x, y) = correlated_pair(200, 4, 8, 7, 0.1, 3);
        let cca = Cca::fit(&x, &y, 4, 1e-4).unwrap();
        let px = cca.project_x(&x);
        let py = cca.project_y(&y);
        // median rank by cosine distance
        let mut ranks = Vec::new();
        for i in 0..px.rows {
            let qi = px.row(i);
            let nq = qi.iter().map(|v| v * v).sum::<f64>().sqrt();
            let sim = |row: &[f64]| -> f64 {
                let dot: f64 = qi.iter().zip(row).map(|(a, b)| a * b).sum();
                let nr = row.iter().map(|v| v * v).sum::<f64>().sqrt();
                dot / (nq * nr).max(1e-12)
            };
            let s_match = sim(py.row(i));
            let closer = (0..py.rows).filter(|&j| j != i && sim(py.row(j)) > s_match).count();
            ranks.push(closer + 1);
        }
        ranks.sort_unstable();
        let medr = ranks[ranks.len() / 2];
        assert!(medr <= 5, "CCA retrieval MedR {medr} (chance would be ~100)");
    }

    #[test]
    fn non_positive_definite_is_a_typed_error() {
        // Zero data with zero regularisation: Σxx is singular.
        let x = Mat::zeros(10, 3);
        let y = Mat::zeros(10, 2);
        let err = Cca::fit(&x, &y, 2, 0.0).err().expect("singular covariance");
        assert_eq!(err, CcaError::NotPositiveDefinite { modality: "x" });
        assert!(err.to_string().contains("raise reg"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unpaired")]
    fn rejects_unpaired() {
        let x = Mat::zeros(10, 3);
        let y = Mat::zeros(9, 3);
        let _ = Cca::fit(&x, &y, 2, 1e-3);
    }
}
