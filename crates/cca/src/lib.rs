//! # cmr-cca
//!
//! Canonical Correlation Analysis — the classic global-alignment baseline
//! the paper compares against (§4.3, Table 3, "CCA \[33\]"). CCA finds linear
//! projections of the two modalities maximising the correlation of matching
//! pairs; unlike the triplet-based models it ignores dissimilar pairs, which
//! is exactly the weakness Table 3 exposes.
//!
//! Implemented from scratch on `cmr-linalg`: covariance estimation,
//! Cholesky whitening, and the symmetric eigenproblem of the whitened
//! cross-covariance.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cca;

pub use cca::{Cca, CcaError};
