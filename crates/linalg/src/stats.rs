//! Sample statistics for CCA: means and (cross-)covariance matrices.

// cmr-lint: allow-file(panic-path) sample-count preconditions are the documented Panics contract; column loops stay within mat dims

use crate::matrix::Mat;

/// Column means of an `(n, d)` sample matrix.
///
/// # Panics
/// Panics on an empty matrix.
pub fn mean_rows(x: &Mat) -> Vec<f64> {
    assert!(x.rows > 0, "mean_rows: empty sample");
    let mut mean = vec![0.0; x.cols];
    for r in 0..x.rows {
        for (m, &v) in mean.iter_mut().zip(x.row(r)) {
            *m += v;
        }
    }
    let inv = 1.0 / x.rows as f64;
    for m in &mut mean {
        *m *= inv;
    }
    mean
}

/// Unbiased covariance `(d, d)` of an `(n, d)` sample matrix.
///
/// # Panics
/// Panics when `n < 2`.
pub fn covariance(x: &Mat) -> Mat {
    cross_covariance(x, x)
}

/// Unbiased cross-covariance `(dx, dy)` between two paired sample matrices
/// `(n, dx)` and `(n, dy)`.
///
/// # Panics
/// Panics when the row counts differ or `n < 2`.
pub fn cross_covariance(x: &Mat, y: &Mat) -> Mat {
    assert_eq!(x.rows, y.rows, "cross_covariance: unpaired samples");
    assert!(x.rows >= 2, "cross_covariance: need at least two samples");
    let mx = mean_rows(x);
    let my = mean_rows(y);
    let mut c = Mat::zeros(x.cols, y.cols);
    for r in 0..x.rows {
        let xr = x.row(r);
        let yr = y.row(r);
        for i in 0..x.cols {
            let xc = xr[i] - mx[i];
            if xc == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv += xc * (yr[j] - my[j]);
            }
        }
    }
    c.scaled(1.0 / (x.rows as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_rows() {
        let x = Mat::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        assert_eq!(mean_rows(&x), vec![1.0, 2.0]);
        // covariance of constants is zero
        assert!(covariance(&x).frob_norm() < 1e-15);
    }

    #[test]
    fn known_covariance() {
        // var([0,2]) = 2 (unbiased), cov with itself = 2
        let x = Mat::from_rows(&[&[0.0, 0.0], &[2.0, 2.0]]);
        let c = covariance(&x);
        assert!((c.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((c.get(0, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric_psd() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let x = Mat::new(50, 4, (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let c = covariance(&x);
        assert!(c.max_abs_diff(&c.t()) < 1e-12);
        let eig = crate::eigen::eigh(&c);
        assert!(eig.values.iter().all(|&l| l > -1e-10), "{:?}", eig.values);
    }

    #[test]
    fn cross_covariance_transpose_identity() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let x = Mat::new(30, 3, (0..90).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let y = Mat::new(30, 2, (0..60).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let cxy = cross_covariance(&x, &y);
        let cyx = cross_covariance(&y, &x);
        assert!(cxy.t().max_abs_diff(&cyx) < 1e-12);
    }
}
