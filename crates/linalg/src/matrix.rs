//! Dense row-major `f64` matrix.

// cmr-lint: allow-file(panic-path) dimension preconditions are the documented contract; indexing stays within dims the asserts establish

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense `f64` matrix, row-major.
///
/// The `f32` tensor in `cmr-tensor` is for training; this type is for the
/// closed-form numerics (CCA, eigenproblems) where precision dominates.
#[derive(Clone, PartialEq)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major elements.
    pub data: Vec<f64>,
}

impl Mat {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Mat::new: length/shape mismatch");
        Self { rows, cols, data }
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics on ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Mat::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn t(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.get(r, c);
            }
        }
        out
    }

    /// Matrix product.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "Mat::matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            for l in 0..k {
                let a = self.data[i * k + l];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[l * n..(l + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · v` for a length-`cols` vector.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "Mat::matvec: dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Scales every element.
    pub fn scaled(&self, s: f64) -> Mat {
        Mat { rows: self.rows, cols: self.cols, data: self.data.iter().map(|x| x * s).collect() }
    }

    /// Adds `v` to the diagonal (ridge regularisation).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn add_diag(&mut self, v: f64) {
        assert_eq!(self.rows, self.cols, "Mat::add_diag: square matrix required");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += v;
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max absolute element difference; `f64::INFINITY` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        if self.rows != other.rows || self.cols != other.cols {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Symmetrises in place: `A ← (A + Aᵀ)/2` (kills float asymmetry before
    /// an `eigh` call).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "Mat::symmetrize: square matrix required");
        for r in 0..self.rows {
            for c in r + 1..self.cols {
                let v = 0.5 * (self.get(r, c) + self.get(c, r));
                self.set(r, c, v);
                self.set(c, r, v);
            }
        }
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "Mat add: shape");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "Mat sub: shape");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            let shown: Vec<String> =
                self.row(r).iter().take(8).map(|v| format!("{v:+.4}")).collect();
            writeln!(f, "  [{}]", shown.join(", "))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eye_is_multiplicative_identity() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Mat::eye(2)).data, a.data);
        assert_eq!(Mat::eye(2).matmul(&a).data, a.data);
    }

    #[test]
    fn transpose_of_product() {
        // (AB)ᵀ = BᵀAᵀ
        let a = Mat::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, -4.0, 1.0]]);
        let b = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 1.0], &[-1.0, 3.0]]);
        let lhs = a.matmul(&b).t();
        let rhs = b.t().matmul(&a.t());
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        a.symmetrize();
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 3.0);
    }

    #[test]
    fn add_diag_ridges() {
        let mut a = Mat::zeros(2, 2);
        a.add_diag(0.5);
        assert_eq!(a.data, vec![0.5, 0.0, 0.0, 0.5]);
    }
}
