//! Cholesky factorisation and triangular solves.

// cmr-lint: allow-file(panic-path) dimension and definiteness preconditions are the documented Panics contract of these factorisation kernels

use crate::matrix::Mat;

/// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite
/// matrix. Returns the lower-triangular `L`, or `None` if the matrix is not
/// (numerically) positive definite.
pub fn cholesky(a: &Mat) -> Option<Mat> {
    assert_eq!(a.rows, a.cols, "cholesky: square matrix required");
    let n = a.rows;
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solves `L·X = B` for lower-triangular `L` (forward substitution),
/// column-by-column over `B`.
///
/// # Panics
/// Panics on dimension mismatch or an exactly-zero diagonal.
pub fn solve_lower_triangular(l: &Mat, b: &Mat) -> Mat {
    assert_eq!(l.rows, l.cols, "solve_lower_triangular: square L required");
    assert_eq!(l.rows, b.rows, "solve_lower_triangular: dimension mismatch");
    let n = l.rows;
    let m = b.cols;
    let mut x = b.clone();
    for col in 0..m {
        for i in 0..n {
            let mut s = x.get(i, col);
            for k in 0..i {
                s -= l.get(i, k) * x.get(k, col);
            }
            let d = l.get(i, i);
            assert!(d != 0.0, "solve_lower_triangular: singular L");
            x.set(i, col, s / d);
        }
    }
    x
}

/// Solves `U·X = B` for upper-triangular `U` (back substitution).
///
/// # Panics
/// Panics on dimension mismatch or an exactly-zero diagonal.
pub fn solve_upper_triangular(u: &Mat, b: &Mat) -> Mat {
    assert_eq!(u.rows, u.cols, "solve_upper_triangular: square U required");
    assert_eq!(u.rows, b.rows, "solve_upper_triangular: dimension mismatch");
    let n = u.rows;
    let m = b.cols;
    let mut x = b.clone();
    for col in 0..m {
        for i in (0..n).rev() {
            let mut s = x.get(i, col);
            for k in i + 1..n {
                s -= u.get(i, k) * x.get(k, col);
            }
            let d = u.get(i, i);
            assert!(d != 0.0, "solve_upper_triangular: singular U");
            x.set(i, col, s / d);
        }
    }
    x
}

/// Inverse of a symmetric positive-definite matrix via Cholesky:
/// `A⁻¹ = L⁻ᵀ·L⁻¹`. Returns `None` when `A` is not positive definite.
pub fn spd_inverse(a: &Mat) -> Option<Mat> {
    let l = cholesky(a)?;
    let n = a.rows;
    // Solve L·Y = I, then Lᵀ·X = Y.
    let y = solve_lower_triangular(&l, &Mat::eye(n));
    let x = solve_upper_triangular(&l.t(), &y);
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_from_seed(n: usize, seed: u64) -> Mat {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let b = Mat::new(n, n, (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let mut a = b.t().matmul(&b);
        a.add_diag(0.5 * n as f64);
        a
    }

    #[test]
    fn factorisation_reconstructs() {
        let a = spd_from_seed(5, 3);
        let l = cholesky(&a).expect("SPD");
        let rec = l.matmul(&l.t());
        assert!(rec.max_abs_diff(&a) < 1e-10, "{:e}", rec.max_abs_diff(&a));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn triangular_solves_invert() {
        let a = spd_from_seed(4, 7);
        let l = cholesky(&a).unwrap();
        let b = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = solve_lower_triangular(&l, &b);
        assert!(l.matmul(&y).max_abs_diff(&b) < 1e-10);
        let x = solve_upper_triangular(&l.t(), &y);
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn spd_inverse_is_inverse() {
        let a = spd_from_seed(6, 11);
        let inv = spd_inverse(&a).unwrap();
        assert!(a.matmul(&inv).max_abs_diff(&Mat::eye(6)) < 1e-9);
    }

    proptest! {
        #[test]
        fn cholesky_always_reconstructs_spd(seed in 0u64..500, n in 2usize..8) {
            let a = spd_from_seed(n, seed);
            let l = cholesky(&a).expect("construction is SPD");
            prop_assert!(l.matmul(&l.t()).max_abs_diff(&a) < 1e-8);
            // L is lower triangular
            for r in 0..n {
                for c in r + 1..n {
                    prop_assert_eq!(l.get(r, c), 0.0);
                }
            }
        }
    }
}
