//! # cmr-linalg
//!
//! Small dense `f64` linear-algebra toolkit: just enough, implemented from
//! scratch, for the Canonical Correlation Analysis baseline (§4.3 of the
//! paper) and numeric checks elsewhere in the workspace — matrix products,
//! Cholesky factorisation, a cyclic Jacobi symmetric eigensolver, and
//! covariance estimation.
//!
//! `f64` is used throughout: CCA whitens covariance matrices, which squares
//! condition numbers, and `f32` loses too much precision there.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod decomp;
pub mod eigen;
pub mod matrix;
pub mod stats;

pub use decomp::{cholesky, solve_lower_triangular, solve_upper_triangular, spd_inverse};
pub use eigen::{eigh, EighResult};
pub use matrix::Mat;
pub use stats::{covariance, cross_covariance, mean_rows};
