//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! Jacobi is slow (`O(n³)` per sweep) but unconditionally robust for the
//! small symmetric matrices CCA needs (dimension = feature dimension, a few
//! hundred at most), and it is simple enough to trust when written from
//! scratch.

// cmr-lint: allow-file(panic-path) square-matrix precondition is the documented Panics contract; sweep indices stay within n

use crate::matrix::Mat;

/// Result of [`eigh`]: `a = V · diag(λ) · Vᵀ`.
pub struct EighResult {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as *columns*, in the same order as `values`.
    pub vectors: Mat,
}

/// Eigendecomposition of a symmetric matrix (only the lower triangle is
/// trusted: the input is symmetrised first).
///
/// Runs Jacobi sweeps until off-diagonal mass drops below `1e-12` relative
/// to the Frobenius norm, or 50 sweeps.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn eigh(a: &Mat) -> EighResult {
    assert_eq!(a.rows, a.cols, "eigh: square matrix required");
    let n = a.rows;
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Mat::eye(n);
    let scale = m.frob_norm().max(1e-300);

    for _sweep in 0..50 {
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += m.get(p, q).powi(2);
            }
        }
        if off.sqrt() <= 1e-12 * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m.get(j, j).total_cmp(&m.get(i, i)));
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let mut vectors = Mat::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_c, v.get(r, old_c));
        }
    }
    EighResult { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sym_from_seed(n: usize, seed: u64) -> Mat {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let b = Mat::new(n, n, (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let mut a = &b + &b.t();
        a.symmetrize();
        a
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let r = eigh(&a);
        assert!((r.values[0] - 3.0).abs() < 1e-12);
        assert!((r.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let r = eigh(&a);
        assert!((r.values[0] - 3.0).abs() < 1e-10);
        assert!((r.values[1] - 1.0).abs() < 1e-10);
    }

    proptest! {
        #[test]
        fn reconstructs_and_orthonormal(seed in 0u64..200, n in 2usize..9) {
            let a = sym_from_seed(n, seed);
            let r = eigh(&a);
            // V·diag(λ)·Vᵀ == A
            let mut lam = Mat::zeros(n, n);
            for i in 0..n {
                lam.set(i, i, r.values[i]);
            }
            let rec = r.vectors.matmul(&lam).matmul(&r.vectors.t());
            prop_assert!(rec.max_abs_diff(&a) < 1e-8, "reconstruction err {:e}", rec.max_abs_diff(&a));
            // VᵀV == I
            let vtv = r.vectors.t().matmul(&r.vectors);
            prop_assert!(vtv.max_abs_diff(&Mat::eye(n)) < 1e-9);
            // descending order
            for w in r.values.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }

        #[test]
        fn trace_equals_eigenvalue_sum(seed in 0u64..200, n in 2usize..9) {
            let a = sym_from_seed(n, seed);
            let r = eigh(&a);
            let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
            let sum: f64 = r.values.iter().sum();
            prop_assert!((trace - sum).abs() < 1e-9);
        }
    }
}
