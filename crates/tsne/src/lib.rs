//! # cmr-tsne
//!
//! Exact t-SNE (van der Maaten & Hinton, 2008) for visualising the learned
//! latent space — Figure 3 of the paper embeds 400 matching recipe–image
//! pairs from the 5 most frequent classes into 2-D and compares AdaMine_ins
//! against AdaMine.
//!
//! The exact `O(n²)` formulation is used: the figure needs only ~800 points,
//! where Barnes–Hut bookkeeping would cost more than it saves.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod tsne;

pub use tsne::{run, TsneConfig};
