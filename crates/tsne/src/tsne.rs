//! The exact t-SNE algorithm.

// cmr-lint: allow-file(panic-path) fixed-shape loop nests over matrices this module allocates itself; indices derive from those shapes

use rand::Rng;

/// t-SNE hyper-parameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions (typical 5–50).
    pub perplexity: f64,
    /// Gradient step size (η).
    pub learning_rate: f64,
    /// Total gradient iterations.
    pub n_iter: usize,
    /// Early-exaggeration multiplier applied to `P` at the start.
    pub early_exaggeration: f64,
    /// Iterations during which the exaggeration is active.
    pub exaggeration_iters: usize,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            learning_rate: 100.0,
            n_iter: 500,
            early_exaggeration: 4.0,
            exaggeration_iters: 100,
        }
    }
}

/// Embeds `n` points of dimension `dim` (row-major in `data`) into 2-D.
///
/// Returns `n` `(x, y)` coordinates. Deterministic for a given RNG state.
///
/// # Panics
/// Panics if `data.len() != n * dim`, `n < 4`, or the perplexity is not
/// achievable (`perplexity >= n`).
pub fn run(data: &[f32], n: usize, dim: usize, cfg: &TsneConfig, rng: &mut impl Rng) -> Vec<(f64, f64)> {
    assert_eq!(data.len(), n * dim, "tsne: data length mismatch");
    assert!(n >= 4, "tsne: need at least 4 points");
    assert!(
        cfg.perplexity < n as f64,
        "tsne: perplexity {} not achievable with {n} points",
        cfg.perplexity
    );

    // --- pairwise squared distances in high-dim space -----------------
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let mut s = 0.0f64;
            for k in 0..dim {
                let diff = (data[i * dim + k] - data[j * dim + k]) as f64;
                s += diff * diff;
            }
            d2[i * n + j] = s;
            d2[j * n + i] = s;
        }
    }

    // --- per-point sigma by binary search on perplexity ----------------
    let target_entropy = cfg.perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let mut beta = 1.0f64; // 1 / (2σ²)
        let (mut beta_lo, mut beta_hi) = (0.0f64, f64::INFINITY);
        let row = &d2[i * n..(i + 1) * n];
        let mut probs = vec![0.0f64; n];
        for _ in 0..64 {
            let mut sum = 0.0;
            for (j, &dd) in row.iter().enumerate() {
                probs[j] = if j == i { 0.0 } else { (-beta * dd).exp() };
                sum += probs[j];
            }
            if sum <= 0.0 {
                beta /= 2.0;
                continue;
            }
            // H = ln(sum) + beta * E[d²]
            let mut ed = 0.0;
            for (j, &dd) in row.iter().enumerate() {
                ed += probs[j] * dd;
            }
            let entropy = sum.ln() + beta * ed / sum;
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() { (beta + beta_hi) / 2.0 } else { beta * 2.0 };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let sum: f64 = probs.iter().sum();
        for (j, &pr) in probs.iter().enumerate() {
            p[i * n + j] = if sum > 0.0 { pr / sum } else { 0.0 };
        }
    }

    // --- symmetrise ----------------------------------------------------
    let mut pij = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // --- gradient descent -----------------------------------------------
    let mut y: Vec<f64> = (0..2 * n).map(|_| rng.gen_range(-1e-2..1e-2)).collect();
    let mut vel = vec![0.0f64; 2 * n];
    let mut q = vec![0.0f64; n * n];

    for iter in 0..cfg.n_iter {
        let exaggeration =
            if iter < cfg.exaggeration_iters { cfg.early_exaggeration } else { 1.0 };
        let momentum = if iter < cfg.exaggeration_iters { 0.5 } else { 0.8 };

        // Student-t affinities in 2-D.
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                let dx = y[2 * i] - y[2 * j];
                let dy = y[2 * i + 1] - y[2 * j + 1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        qsum = qsum.max(1e-12);

        for i in 0..n {
            let mut gx = 0.0f64;
            let mut gy = 0.0f64;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let pq = exaggeration * pij[i * n + j] - w / qsum;
                let mult = 4.0 * pq * w;
                gx += mult * (y[2 * i] - y[2 * j]);
                gy += mult * (y[2 * i + 1] - y[2 * j + 1]);
            }
            vel[2 * i] = momentum * vel[2 * i] - cfg.learning_rate * gx;
            vel[2 * i + 1] = momentum * vel[2 * i + 1] - cfg.learning_rate * gy;
        }
        for (yi, vi) in y.iter_mut().zip(&vel) {
            *yi += vi;
        }
        // Re-centre to keep coordinates bounded.
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            cx += y[2 * i];
            cy += y[2 * i + 1];
        }
        cx /= n as f64;
        cy /= n as f64;
        for i in 0..n {
            y[2 * i] -= cx;
            y[2 * i + 1] -= cy;
        }
    }

    (0..n).map(|i| (y[2 * i], y[2 * i + 1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Three well-separated Gaussian blobs in 10-D must stay separated in
    /// 2-D: each point's nearest neighbours should come from its own blob.
    #[test]
    fn preserves_cluster_structure() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        let per = 30;
        let dim = 10;
        let mut data = Vec::new();
        for blob in 0..3 {
            for _ in 0..per {
                for k in 0..dim {
                    let center = if k == blob { 8.0 } else { 0.0 };
                    data.push(center + rng.gen_range(-0.5f32..0.5));
                }
            }
        }
        let n = 3 * per;
        let cfg = TsneConfig { perplexity: 10.0, n_iter: 300, ..Default::default() };
        let coords = run(&data, n, dim, &cfg, &mut rng);

        // 5-NN purity
        let mut pure = 0;
        let mut total = 0;
        for i in 0..n {
            let mut dists: Vec<(usize, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    let dx = coords[i].0 - coords[j].0;
                    let dy = coords[i].1 - coords[j].1;
                    (j, dx * dx + dy * dy)
                })
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for &(j, _) in dists.iter().take(5) {
                total += 1;
                if j / per == i / per {
                    pure += 1;
                }
            }
        }
        let purity = pure as f64 / total as f64;
        assert!(purity > 0.9, "kNN purity {purity}");
    }

    #[test]
    fn output_is_centred_and_finite() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(22);
        let n = 20;
        let dim = 4;
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = TsneConfig { perplexity: 5.0, n_iter: 100, ..Default::default() };
        let coords = run(&data, n, dim, &cfg, &mut rng);
        assert_eq!(coords.len(), n);
        let cx: f64 = coords.iter().map(|c| c.0).sum::<f64>() / n as f64;
        assert!(cx.abs() < 1e-6, "not centred: {cx}");
        assert!(coords.iter().all(|c| c.0.is_finite() && c.1.is_finite()));
    }

    #[test]
    #[should_panic(expected = "perplexity")]
    fn rejects_unachievable_perplexity() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let data = vec![0.0f32; 5 * 2];
        run(&data, 5, 2, &TsneConfig::default(), &mut rng);
    }
}
