//! Model and training configuration.


/// Gradient-aggregation strategy over the triplets of a mini-batch (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// AdaMine's adaptive mining: normalise by the number of *active*
    /// (loss-violating) triplets β′ (Eq. 4–5). An automatic curriculum from
    /// averaging to hard-negative mining.
    Adaptive,
    /// The common practice the paper ablates (`AdaMine_avg`): average over
    /// *all* triplets, active or not — gradients vanish late in training.
    Average,
}

/// Which parts of the recipe text the model consumes (the `AdaMine_ingr` /
/// `AdaMine_instr` ablations of Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TextMode {
    /// Ingredients and instructions (the full model).
    Full,
    /// Ingredient list only.
    IngredientsOnly,
    /// Instruction sentences only.
    InstructionsOnly,
}

/// The loss family a scenario trains with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossKind {
    /// Triplet-based (AdaMine family).
    Triplet {
        /// Include the semantic triplet loss `L_sem` (Eq. 3).
        semantic: bool,
        /// Replace `L_sem` by the classification head of Salvador et al.
        /// (`AdaMine_ins+cls`).
        classification: bool,
    },
    /// Pairwise contrastive (PWC\* / PWC++, Eq. 6), always with the
    /// classification head as in Salvador et al.
    Pairwise {
        /// Positive margin α_pos (0 reproduces PWC\*, 0.3 gives PWC++).
        pos_margin: f32,
        /// Negative margin α_neg (0.9 in the paper).
        neg_margin: f32,
    },
}

/// Architecture dimensions. Defaults follow DESIGN.md's `default` scale —
/// the paper-scale values are in the doc comments.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Shared latent dimensionality (paper: 1024).
    pub latent_dim: usize,
    /// word2vec embedding dimensionality (paper: 300).
    pub word_dim: usize,
    /// Hidden size of the bidirectional ingredient LSTM (output is 2×).
    pub ingr_hidden: usize,
    /// Frozen sentence-feature dimensionality (skip-thought stand-in;
    /// paper: 2400 skip-thought).
    pub sent_feat_dim: usize,
    /// Hidden size of the sentence-level instruction LSTM.
    pub sent_hidden: usize,
    /// Hidden width of the trainable image adapter (the fine-tunable "top
    /// of ResNet-50" stand-in).
    pub adapter_hidden: usize,
    /// Which text inputs are wired in.
    pub text_mode: TextMode,
    /// Classes for the optional classification head (0 = no head).
    pub n_classes: usize,
    /// Cap on ingredient tokens fed to the LSTM.
    pub max_ingredients: usize,
    /// Cap on instruction sentences fed to the LSTM.
    pub max_sentences: usize,
    /// Parameter-init seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            latent_dim: 64,
            word_dim: 32,
            ingr_hidden: 48,
            sent_feat_dim: 32,
            sent_hidden: 48,
            adapter_hidden: 128,
            text_mode: TextMode::Full,
            n_classes: 0,
            max_ingredients: 12,
            max_sentences: 8,
            seed: 23,
        }
    }
}

impl ModelConfig {
    /// A miniature configuration for tests.
    pub fn tiny() -> Self {
        Self {
            latent_dim: 24,
            word_dim: 16,
            ingr_hidden: 16,
            sent_feat_dim: 16,
            sent_hidden: 16,
            adapter_hidden: 32,
            max_ingredients: 6,
            max_sentences: 4,
            ..Self::default()
        }
    }
}

/// Training-loop hyper-parameters (§4.4).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Total epochs (paper: 80).
    pub epochs: usize,
    /// Epochs with the image backbone adapter frozen (paper: 20).
    pub freeze_epochs: usize,
    /// Pairs per mini-batch (paper: 100).
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-4; larger here because the models are
    /// far smaller).
    pub lr: f32,
    /// Triplet margin α (paper: 0.3, cross-validated over 0.1–1).
    pub margin: f32,
    /// Semantic-loss weight λ (paper: 0.3).
    pub lambda: f32,
    /// Classification-head weight for the `_ins+cls` / PWC scenarios.
    /// Salvador et al.'s released im2recipe implementation uses 0.02 for
    /// its semantic-regularisation branch; cross-entropy at λ-scale (0.3)
    /// overwhelms the metric losses.
    pub cls_weight: f32,
    /// Adaptive vs. average aggregation.
    pub strategy: Strategy,
    /// Loss family.
    pub loss: LossKind,
    /// Validation pairs used for per-epoch model selection (subsampled for
    /// speed; the paper uses the full 51k validation set).
    pub val_subset: usize,
    /// Word2vec pretraining epochs.
    pub w2v_epochs: usize,
    /// Run seed (batching, negative subsampling, val sampling).
    pub seed: u64,
    /// Consecutive non-finite (NaN/∞ loss) batches tolerated before the
    /// trainer rolls the epoch back to its last good state. Skipped batches
    /// below this threshold are counted in
    /// [`EpochStats::skipped_batches`](crate::EpochStats) and otherwise
    /// ignored.
    pub max_bad_batches: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            freeze_epochs: 7,
            batch_size: 100,
            lr: 1e-3,
            margin: 0.3,
            lambda: 0.3,
            cls_weight: 0.02,
            strategy: Strategy::Adaptive,
            loss: LossKind::Triplet { semantic: true, classification: false },
            val_subset: 500,
            w2v_epochs: 4,
            seed: 37,
            max_bad_batches: 8,
        }
    }
}

impl TrainConfig {
    /// A configuration small enough for unit tests (minutes → seconds).
    pub fn for_scale_tiny() -> Self {
        Self {
            epochs: 8,
            freeze_epochs: 1,
            batch_size: 40,
            val_subset: 120,
            w2v_epochs: 2,
            ..Self::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] naming the first violated constraint
    /// (zero epochs, odd batch, margin ≤ 0 …).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let check = |ok: bool, constraint: &str| {
            if ok {
                Ok(())
            } else {
                Err(ConfigError { constraint: constraint.to_string() })
            }
        };
        check(self.epochs >= 1, "epochs must be positive")?;
        check(self.freeze_epochs <= self.epochs, "freeze phase longer than training")?;
        check(self.batch_size >= 4 && self.batch_size.is_multiple_of(2), "bad batch size")?;
        check(self.lr > 0.0, "bad learning rate")?;
        check(self.margin > 0.0, "margin must be positive")?;
        check(self.lambda >= 0.0, "lambda must be non-negative")?;
        check(self.max_bad_batches >= 1, "max_bad_batches must be at least 1")?;
        if let LossKind::Pairwise { pos_margin, neg_margin } = self.loss {
            check(
                pos_margin >= 0.0 && neg_margin > pos_margin,
                "pairwise margins must satisfy 0 <= pos < neg",
            )?;
        }
        Ok(())
    }
}

/// A [`TrainConfig`] constraint violation, reported by
/// [`TrainConfig::validate`] instead of a panic so callers (and the
/// trainer's [`fit`](crate::Trainer::fit) path) can surface it as data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The violated constraint, in the words of the config documentation.
    pub constraint: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid training configuration: {}", self.constraint)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TrainConfig::default().validate().unwrap();
        TrainConfig::for_scale_tiny().validate().unwrap();
    }

    #[test]
    fn rejects_overlong_freeze() {
        let cfg = TrainConfig { freeze_epochs: 100, ..Default::default() };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("freeze phase"), "{err}");
    }

    #[test]
    fn rejects_inverted_margins() {
        let cfg = TrainConfig {
            loss: LossKind::Pairwise { pos_margin: 0.9, neg_margin: 0.3 },
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("pairwise margins"), "{err}");
    }
}
