//! The two-branch embedding network (§3.2.1).

use crate::config::{ModelConfig, TextMode};
use crate::precompute::RecipeFeatures;
use cmr_data::Dataset;
use cmr_nn::{Bindings, BiLstm, Embedding, Linear, Lstm, ParamStore};
use cmr_tensor::{Graph, NodeId, TensorData};
use cmr_word2vec::{vocab::PAD, WordVectors};
use rand::SeedableRng;

/// One mini-batch of aligned image/recipe inputs, already tensorised.
///
/// Sequences are stored *time-major* (one entry per timestep holding the
/// whole batch) because that is the layout the LSTM consumes; per-row true
/// lengths drive the masking.
pub struct BatchInputs {
    /// `(B, image_dim)` frozen CNN features.
    pub image_feats: TensorData,
    /// Ingredient token ids: `ingr_steps[t][b]` (PAD beyond a row's length).
    pub ingr_steps: Vec<Vec<usize>>,
    /// True ingredient counts per row (≥ 1).
    pub ingr_lengths: Vec<usize>,
    /// Frozen sentence features per timestep: `(B, sent_dim)` each.
    pub sent_steps: Vec<TensorData>,
    /// True sentence counts per row (≥ 1).
    pub sent_lengths: Vec<usize>,
}

impl BatchInputs {
    /// Gathers a batch for dataset pair ids.
    ///
    /// # Panics
    /// Panics if `ids` is empty.
    // cmr-lint: allow(panic-path) documented precondition; ids are pair ids of the same dataset the features were built from
    pub fn gather(dataset: &Dataset, feats: &RecipeFeatures, ids: &[usize]) -> Self {
        assert!(!ids.is_empty(), "BatchInputs::gather: empty batch");
        let image_rows: Vec<&[f32]> = ids.iter().map(|&i| dataset.image(i)).collect();
        let ingr: Vec<&[usize]> =
            ids.iter().map(|&i| feats.ingr_tokens[i].as_slice()).collect();
        let sents: Vec<&[Vec<f32>]> =
            ids.iter().map(|&i| feats.sent_feats[i].as_slice()).collect();
        Self::from_parts(&image_rows, &ingr, &sents, feats.sent_dim)
    }

    /// Builds a batch from raw parts (used for out-of-dataset queries like
    /// the ingredient-to-image task).
    ///
    /// # Panics
    /// Panics on empty inputs or mismatched row counts.
    // cmr-lint: allow(panic-path) documented precondition; all row indexing happens after the row-count asserts
    pub fn from_parts(
        image_rows: &[&[f32]],
        ingr_lists: &[&[usize]],
        sent_lists: &[&[Vec<f32>]],
        sent_dim: usize,
    ) -> Self {
        let b = image_rows.len();
        assert!(b > 0, "BatchInputs::from_parts: empty batch");
        assert_eq!(ingr_lists.len(), b, "BatchInputs: ingredient rows mismatch");
        assert_eq!(sent_lists.len(), b, "BatchInputs: sentence rows mismatch");

        let img_dim = image_rows[0].len();
        let mut image_feats = TensorData::zeros(b, img_dim);
        for (r, row) in image_rows.iter().enumerate() {
            image_feats.row_mut(r).copy_from_slice(row);
        }

        let ingr_lengths: Vec<usize> =
            ingr_lists.iter().map(|l| l.len().max(1)).collect();
        let t_ingr = ingr_lengths.iter().copied().max().unwrap_or(1);
        let mut ingr_steps = vec![vec![PAD; b]; t_ingr];
        for (r, list) in ingr_lists.iter().enumerate() {
            for (t, &tok) in list.iter().enumerate() {
                ingr_steps[t][r] = tok;
            }
        }

        let sent_lengths: Vec<usize> =
            sent_lists.iter().map(|l| l.len().max(1)).collect();
        let t_sent = sent_lengths.iter().copied().max().unwrap_or(1);
        let mut sent_steps = vec![TensorData::zeros(b, sent_dim); t_sent];
        for (r, list) in sent_lists.iter().enumerate() {
            for (t, feat) in list.iter().enumerate() {
                sent_steps[t].row_mut(r).copy_from_slice(feat);
            }
        }

        Self { image_feats, ingr_steps, ingr_lengths, sent_steps, sent_lengths }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.image_feats.rows
    }

    /// `true` for an empty batch (cannot be constructed, kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.image_feats.rows == 0
    }
}

/// The dual network: image branch and recipe branch meeting in the shared
/// latent space.
///
/// * Image branch: frozen CNN features → trainable adapter (`image.adapter`,
///   frozen for the first training phase like the paper's ResNet-50) →
///   projection (`image.proj`) → latent.
/// * Recipe branch: bi-LSTM over frozen word2vec ingredient embeddings
///   (`recipe.ingr`) ∥ sentence-level LSTM over frozen sentence features
///   (`recipe.instr`) → concat → projection (`recipe.proj`) → latent.
///
/// Embeddings are *not* normalised here — the losses and the retrieval code
/// L2-normalise, matching the paper's cosine-distance comparisons.
pub struct TwoBranchModel {
    /// All trainable parameters.
    pub store: ParamStore,
    cfg: ModelConfig,
    image_dim: usize,
    word_emb: Embedding,
    ingr_lstm: BiLstm,
    sent_lstm: Lstm,
    adapter: Linear,
    img_proj: Linear,
    rec_proj: Linear,
    cls_head: Option<Linear>,
}

impl TwoBranchModel {
    /// Builds the model; `word_vectors` are installed as a frozen embedding
    /// table (§3.2.1: pretrained word2vec, not fine-tuned).
    ///
    /// # Panics
    /// Panics if the word-vector dimensionality disagrees with the config.
    pub fn new(cfg: &ModelConfig, word_vectors: &WordVectors, image_dim: usize) -> Self {
        // cmr-lint: allow(panic-path) documented precondition: config and pretrained vectors must agree on word_dim
        assert_eq!(cfg.word_dim, word_vectors.dim, "TwoBranchModel: word dim mismatch");
        let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();

        let table = TensorData::new(
            word_vectors.vocab(),
            word_vectors.dim,
            word_vectors.data.clone(),
        );
        let word_emb = Embedding::from_pretrained(&mut store, "recipe.words", table);
        store.set_frozen(word_emb.table(), true);

        let ingr_lstm = BiLstm::new(&mut store, &mut rng, "recipe.ingr", cfg.word_dim, cfg.ingr_hidden);
        let sent_lstm =
            Lstm::new(&mut store, &mut rng, "recipe.instr", cfg.sent_feat_dim, cfg.sent_hidden);

        let text_dim = match cfg.text_mode {
            TextMode::Full => 2 * cfg.ingr_hidden + cfg.sent_hidden,
            TextMode::IngredientsOnly => 2 * cfg.ingr_hidden,
            TextMode::InstructionsOnly => cfg.sent_hidden,
        };
        let rec_proj = Linear::new(&mut store, &mut rng, "recipe.proj", text_dim, cfg.latent_dim);

        let adapter = Linear::new(&mut store, &mut rng, "image.adapter", image_dim, cfg.adapter_hidden);
        let img_proj = Linear::new(&mut store, &mut rng, "image.proj", cfg.adapter_hidden, cfg.latent_dim);

        let cls_head = (cfg.n_classes > 0)
            .then(|| Linear::new(&mut store, &mut rng, "head.cls", cfg.latent_dim, cfg.n_classes));

        Self {
            store,
            cfg: cfg.clone(),
            image_dim,
            word_emb,
            ingr_lstm,
            sent_lstm,
            adapter,
            img_proj,
            rec_proj,
            cls_head,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Input dimensionality of the image backbone features the adapter was
    /// built for.
    pub fn image_dim(&self) -> usize {
        self.image_dim
    }

    /// Freezes / unfreezes the image backbone adapter — the paper's
    /// two-phase schedule (§4.4: ResNet-50 frozen for 20 epochs, then
    /// fine-tuned).
    pub fn set_backbone_frozen(&mut self, frozen: bool) {
        self.store.set_frozen_by_prefix("image.adapter", frozen);
    }

    /// Forward pass for a batch: returns `(image_embeddings,
    /// recipe_embeddings)` nodes, both `(B, latent_dim)`, unnormalised.
    pub fn forward_batch(
        &self,
        g: &mut Graph,
        binds: &mut Bindings,
        inputs: &BatchInputs,
    ) -> (NodeId, NodeId) {
        // ---- image branch ----
        let x = g.leaf(inputs.image_feats.clone(), false);
        let a = self.adapter.forward(g, binds, &self.store, x);
        let a = g.tanh(a);
        let img = self.img_proj.forward(g, binds, &self.store, a);

        // ---- recipe branch ----
        let text = match self.cfg.text_mode {
            TextMode::Full => {
                let ingr = self.encode_ingredients(g, binds, inputs);
                let instr = self.encode_instructions(g, binds, inputs);
                g.concat_cols(ingr, instr)
            }
            TextMode::IngredientsOnly => self.encode_ingredients(g, binds, inputs),
            TextMode::InstructionsOnly => self.encode_instructions(g, binds, inputs),
        };
        let rec = self.rec_proj.forward(g, binds, &self.store, text);
        (img, rec)
    }

    fn encode_ingredients(
        &self,
        g: &mut Graph,
        binds: &mut Bindings,
        inputs: &BatchInputs,
    ) -> NodeId {
        let steps: Vec<NodeId> = inputs
            .ingr_steps
            .iter()
            .map(|tokens| self.word_emb.forward(g, binds, &self.store, tokens))
            .collect();
        self.ingr_lstm.forward_seq(g, binds, &self.store, &steps, &inputs.ingr_lengths)
    }

    fn encode_instructions(
        &self,
        g: &mut Graph,
        binds: &mut Bindings,
        inputs: &BatchInputs,
    ) -> NodeId {
        let steps: Vec<NodeId> =
            inputs.sent_steps.iter().map(|s| g.leaf(s.clone(), false)).collect();
        self.sent_lstm.forward_seq(g, binds, &self.store, &steps, &inputs.sent_lengths, false)
    }

    /// Classification logits for a batch of latent embeddings.
    ///
    /// # Panics
    /// Panics if the model was built without a classification head.
    pub fn classify(&self, g: &mut Graph, binds: &mut Bindings, emb: NodeId) -> NodeId {
        let head = self
            .cls_head
            .as_ref()
            // cmr-lint: allow(no-panic-lib) documented # Panics; callers gate on has_head()
            .expect("TwoBranchModel::classify: model has no classification head");
        head.forward(g, binds, &self.store, emb)
    }

    /// `true` when the model carries a classification head.
    pub fn has_head(&self) -> bool {
        self.cls_head.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_data::{DataConfig, Scale, Split};
    use cmr_word2vec::SgnsConfig;

    fn setup(text_mode: TextMode, n_classes: usize) -> (Dataset, TwoBranchModel, RecipeFeatures) {
        let d = Dataset::generate(&DataConfig::for_scale(Scale::Tiny));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mcfg = ModelConfig { text_mode, n_classes, ..ModelConfig::tiny() };
        let wv = cmr_word2vec::train(
            &d.word2vec_corpus(),
            d.world.vocab.len(),
            &SgnsConfig { dim: mcfg.word_dim, epochs: 1, ..Default::default() },
            &mut rng,
        );
        let fz = crate::precompute::SentenceFeaturizer::new(&mut rng, mcfg.word_dim, mcfg.sent_feat_dim);
        let feats = RecipeFeatures::build(&d, &wv, &fz, mcfg.max_ingredients, mcfg.max_sentences);
        let model = TwoBranchModel::new(&mcfg, &wv, d.image_dim);
        (d, model, feats)
    }

    #[test]
    fn forward_shapes_for_all_text_modes() {
        for mode in [TextMode::Full, TextMode::IngredientsOnly, TextMode::InstructionsOnly] {
            let (d, model, feats) = setup(mode, 0);
            let ids: Vec<usize> = d.split_range(Split::Train).take(6).collect();
            let batch = BatchInputs::gather(&d, &feats, &ids);
            let mut g = Graph::new();
            let mut binds = Bindings::new();
            let (img, rec) = model.forward_batch(&mut g, &mut binds, &batch);
            assert_eq!(g.value(img).shape(), (6, model.config().latent_dim), "{mode:?}");
            assert_eq!(g.value(rec).shape(), (6, model.config().latent_dim), "{mode:?}");
        }
    }

    #[test]
    fn frozen_backbone_gets_no_grads() {
        let (d, mut model, feats) = setup(TextMode::Full, 0);
        model.set_backbone_frozen(true);
        let ids: Vec<usize> = d.split_range(Split::Train).take(4).collect();
        let batch = BatchInputs::gather(&d, &feats, &ids);
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (img, rec) = model.forward_batch(&mut g, &mut binds, &batch);
        let s = g.add(img, rec);
        let sq = g.mul(s, s);
        let loss = g.sum_all(sq);
        g.backward(loss);
        let adapter_w = model.store.by_name("image.adapter.w").unwrap();
        let proj_w = model.store.by_name("image.proj.w").unwrap();
        let got_adapter = binds.iter().find(|(p, _)| *p == adapter_w).unwrap().1;
        let got_proj = binds.iter().find(|(p, _)| *p == proj_w).unwrap().1;
        assert!(g.grad(got_adapter).is_none(), "frozen adapter got a grad");
        assert!(g.grad(got_proj).is_some(), "projection must still train");
        // word embeddings always frozen
        let words = model.store.by_name("recipe.words.table").unwrap();
        assert!(model.store.is_frozen(words));
    }

    #[test]
    fn head_only_when_requested() {
        let (_, m0, _) = setup(TextMode::Full, 0);
        assert!(!m0.has_head());
        let (d, m1, feats) = setup(TextMode::Full, 8);
        assert!(m1.has_head());
        // logits shape
        let ids: Vec<usize> = d.split_range(Split::Train).take(3).collect();
        let batch = BatchInputs::gather(&d, &feats, &ids);
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (img, _) = m1.forward_batch(&mut g, &mut binds, &batch);
        let logits = m1.classify(&mut g, &mut binds, img);
        assert_eq!(g.value(logits).shape(), (3, 8));
    }

    #[test]
    fn semantic_head_saves_parameters() {
        // The paper's argument: the semantic loss injects class structure
        // with zero extra parameters, while a classification head costs
        // latent_dim × classes (+bias) — ~1M at paper scale.
        let (_, no_head, _) = setup(TextMode::Full, 0);
        let (_, with_head, _) = setup(TextMode::Full, 8);
        let diff = with_head.store.num_scalars() - no_head.store.num_scalars();
        assert_eq!(diff, no_head.config().latent_dim * 8 + 8);
    }

    #[test]
    fn variable_length_batch_is_handled() {
        let (d, model, feats) = setup(TextMode::Full, 0);
        // mix short and long recipes deliberately
        let mut ids: Vec<usize> = d.split_range(Split::Train).take(8).collect();
        ids.sort_by_key(|&i| feats.ingr_tokens[i].len());
        let batch = BatchInputs::gather(&d, &feats, &ids);
        assert!(batch.ingr_lengths.iter().any(|&l| l != batch.ingr_lengths[0]));
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (_, rec) = model.forward_batch(&mut g, &mut binds, &batch);
        assert!(g.value(rec).data.iter().all(|v| v.is_finite()));
    }
}
