//! The training loop (§4.4) and the trained-model inference API.

use crate::config::{LossKind, ModelConfig, TrainConfig};
use crate::losses;
use crate::model::{BatchInputs, TwoBranchModel};
use crate::precompute::{RecipeFeatures, SentenceFeaturizer};
use crate::scenario::Scenario;
use cmr_data::{BatchSampler, Dataset, Recipe, Split};
use cmr_nn::{serialize, Adam, Bindings};
use cmr_retrieval::{median_rank, ranks_of_matches, Embeddings};
use cmr_tensor::Graph;
use cmr_word2vec::{SgnsConfig, WordVectors};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f64,
    /// Validation median rank (mean of both directions) — the model
    /// selection criterion.
    pub val_medr: f64,
    /// Fraction of instance triplets still active — the adaptive-mining
    /// curriculum signal (starts near 1, decays as constraints are
    /// satisfied).
    pub active_fraction: f64,
}

/// Drives one scenario's training run end to end: word2vec pretraining,
/// frozen-feature precomputation, the two-phase freeze schedule, and model
/// selection by validation MedR.
pub struct Trainer {
    scenario: Scenario,
    tcfg: TrainConfig,
    mcfg: ModelConfig,
    quiet: bool,
}

impl Trainer {
    /// Creates a trainer for a scenario with default model dimensions.
    pub fn new(scenario: Scenario, tcfg: TrainConfig) -> Self {
        Self { scenario, tcfg, mcfg: ModelConfig::default(), quiet: false }
    }

    /// Overrides the architecture configuration.
    pub fn with_model_config(mut self, mcfg: ModelConfig) -> Self {
        self.mcfg = mcfg;
        self
    }

    /// Suppresses per-epoch progress lines on stderr.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Runs the full §4.4 pipeline and returns the best-validation model.
    pub fn run(&self, dataset: &Dataset) -> TrainedModel {
        let tcfg = self.scenario.apply_to(self.tcfg.clone());
        tcfg.validate();
        let n_classes = dataset.world.config().n_classes;
        let mcfg = self.scenario.apply_to_model(self.mcfg.clone(), n_classes);

        let mut rng = rand::rngs::SmallRng::seed_from_u64(tcfg.seed);

        // 1. word2vec pretraining on the training corpus (§3.2.1).
        let w2v_cfg = SgnsConfig {
            dim: mcfg.word_dim,
            epochs: tcfg.w2v_epochs,
            ..Default::default()
        };
        let wv = cmr_word2vec::train(
            &dataset.word2vec_corpus(),
            dataset.world.vocab.len(),
            &w2v_cfg,
            &mut rng,
        );

        // 2. frozen text features.
        let featurizer = SentenceFeaturizer::new(&mut rng, mcfg.word_dim, mcfg.sent_feat_dim);
        let feats =
            RecipeFeatures::build(dataset, &wv, &featurizer, mcfg.max_ingredients, mcfg.max_sentences);

        // 3. model + optimiser, backbone frozen for phase one.
        let mut model = TwoBranchModel::new(&mcfg, &wv, dataset.image_dim);
        model.set_backbone_frozen(tcfg.freeze_epochs > 0);
        let mut adam = Adam::new(tcfg.lr);

        // 4. fixed validation subset for model selection.
        let mut val_ids: Vec<usize> = dataset.split_range(Split::Val).collect();
        val_ids.shuffle(&mut rng);
        val_ids.truncate(tcfg.val_subset.max(10).min(val_ids.len()));

        let mut sampler = BatchSampler::new(dataset, Split::Train, tcfg.batch_size);
        let mut stats = Vec::with_capacity(tcfg.epochs);
        let mut best: Option<(f64, usize, Vec<u8>)> = None;

        for epoch in 0..tcfg.epochs {
            if epoch == tcfg.freeze_epochs {
                model.set_backbone_frozen(false);
            }
            let mut loss_sum = 0.0f64;
            let mut loss_n = 0usize;
            let mut active_sum = 0.0f64;
            let mut active_n = 0usize;

            for _ in 0..sampler.batches_per_epoch() {
                let ids = sampler.next_batch(&mut rng);
                let labels: Vec<Option<usize>> =
                    ids.iter().map(|&i| dataset.recipes[i].label).collect();
                let inputs = BatchInputs::gather(dataset, &feats, &ids);

                let mut g = Graph::new();
                let mut binds = Bindings::new();
                let (img, rec) = model.forward_batch(&mut g, &mut binds, &inputs);
                let d_ir = losses::cosine_distance_matrix(&mut g, img, rec);
                let d_ri = losses::cosine_distance_matrix(&mut g, rec, img);

                let mut total = None;
                match tcfg.loss {
                    LossKind::Triplet { semantic, classification } => {
                        if !self.scenario.semantic_only() {
                            let a = losses::instance_hinge(&mut g, d_ir, tcfg.margin);
                            let b = losses::instance_hinge(&mut g, d_ri, tcfg.margin);
                            active_sum += (a.active + b.active) as f64
                                / (a.total + b.total).max(1) as f64;
                            active_n += 1;
                            total = losses::combine_directions(&mut g, a, b, tcfg.strategy);
                        }
                        if semantic {
                            let sem_ir = losses::semantic_masks(&labels, &mut rng);
                            let sem_ri = losses::semantic_masks(&labels, &mut rng);
                            if let (Some((p1, n1)), Some((p2, n2))) = (sem_ir, sem_ri) {
                                let a = losses::semantic_hinge(&mut g, d_ir, &p1, &n1, tcfg.margin);
                                let b = losses::semantic_hinge(&mut g, d_ri, &p2, &n2, tcfg.margin);
                                if let Some(sem) =
                                    losses::combine_directions(&mut g, a, b, tcfg.strategy)
                                {
                                    let weighted = g.scale(sem, tcfg.lambda);
                                    total = Some(match total {
                                        Some(t) => g.add(t, weighted),
                                        None => weighted,
                                    });
                                }
                            }
                        }
                        if self.scenario.hierarchical() {
                            // Future-work extension: a coarser semantic level
                            // over class super-groups, with a doubled margin
                            // (groups must separate further than classes) at
                            // half the semantic weight.
                            let groups: Vec<Option<usize>> = labels
                                .iter()
                                .map(|l| l.map(|c| dataset.world.class_group(c)))
                                .collect();
                            let g_ir = losses::semantic_masks(&groups, &mut rng);
                            let g_ri = losses::semantic_masks(&groups, &mut rng);
                            if let (Some((p1, n1)), Some((p2, n2))) = (g_ir, g_ri) {
                                let margin = 2.0 * tcfg.margin;
                                let a = losses::semantic_hinge(&mut g, d_ir, &p1, &n1, margin);
                                let b = losses::semantic_hinge(&mut g, d_ri, &p2, &n2, margin);
                                if let Some(hier) =
                                    losses::combine_directions(&mut g, a, b, tcfg.strategy)
                                {
                                    let weighted = g.scale(hier, 0.5 * tcfg.lambda);
                                    total = Some(match total {
                                        Some(t) => g.add(t, weighted),
                                        None => weighted,
                                    });
                                }
                            }
                        }
                        if classification {
                            let cls = self.classification_term(&mut g, &mut binds, &model, img, rec, &labels);
                            let weighted = g.scale(cls, tcfg.cls_weight);
                            total = Some(match total {
                                Some(t) => g.add(t, weighted),
                                None => weighted,
                            });
                        }
                    }
                    LossKind::Pairwise { pos_margin, neg_margin } => {
                        let pw = losses::pairwise_loss(&mut g, d_ir, pos_margin, neg_margin);
                        let cls = self.classification_term(&mut g, &mut binds, &model, img, rec, &labels);
                        let weighted = g.scale(cls, tcfg.cls_weight);
                        total = Some(g.add(pw, weighted));
                    }
                }

                if let Some(loss) = total {
                    loss_sum += g.value(loss).scalar() as f64;
                    loss_n += 1;
                    g.backward(loss);
                    adam.step(&mut model.store, &g, &binds);
                }
            }

            // model selection on validation MedR
            let (vi, vr) = embed_ids(&model, dataset, &feats, &val_ids);
            let medr = val_medr(&vi, &vr);
            let mean_loss = if loss_n > 0 { loss_sum / loss_n as f64 } else { 0.0 };
            let active_fraction =
                if active_n > 0 { active_sum / active_n as f64 } else { 0.0 };
            stats.push(EpochStats { epoch, mean_loss, val_medr: medr, active_fraction });
            if !self.quiet {
                eprintln!(
                    "[{}] epoch {epoch:>2}: loss {mean_loss:.4}  val MedR {medr:.1}  active {:.0}%",
                    self.scenario.name(),
                    active_fraction * 100.0
                );
            }
            if best.as_ref().is_none_or(|(m, _, _)| medr < *m) {
                best = Some((medr, epoch, serialize::save_params(&model.store)));
            }
        }

        // restore the best-validation checkpoint (§4.4 model selection)
        let (best_val_medr, best_epoch, blob) = best.expect("at least one epoch");
        serialize::load_params(&mut model.store, &blob).expect("own checkpoint reloads");

        TrainedModel {
            scenario: self.scenario,
            model,
            wv,
            featurizer,
            feats,
            epochs: stats,
            best_val_medr,
            best_epoch,
        }
    }

    fn classification_term(
        &self,
        g: &mut Graph,
        binds: &mut Bindings,
        model: &TwoBranchModel,
        img: cmr_tensor::NodeId,
        rec: cmr_tensor::NodeId,
        labels: &[Option<usize>],
    ) -> cmr_tensor::NodeId {
        let targets = losses::cls_targets(labels);
        let li = model.classify(g, binds, img);
        let ce_i = g.softmax_cross_entropy(li, targets.clone());
        let lr = model.classify(g, binds, rec);
        let ce_r = g.softmax_cross_entropy(lr, targets);
        let s = g.add(ce_i, ce_r);
        g.scale(s, 0.5)
    }
}

fn embed_ids(
    model: &TwoBranchModel,
    dataset: &Dataset,
    feats: &RecipeFeatures,
    ids: &[usize],
) -> (Embeddings, Embeddings) {
    let dim = model.config().latent_dim;
    let mut imgs = Embeddings::with_capacity(dim, ids.len());
    let mut recs = Embeddings::with_capacity(dim, ids.len());
    // Wide chunks keep the row-parallel matmul kernels saturated: each
    // forward pass splits its batch across the worker threads, so the
    // chunk size bounds the available parallelism per call.
    for chunk in ids.chunks(512) {
        let inputs = BatchInputs::gather(dataset, feats, chunk);
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (img, rec) = model.forward_batch(&mut g, &mut binds, &inputs);
        let iv = g.value(img);
        let rv = g.value(rec);
        for r in 0..chunk.len() {
            imgs.push(iv.row(r));
            recs.push(rv.row(r));
        }
    }
    (imgs, recs)
}

fn val_medr(imgs: &Embeddings, recs: &Embeddings) -> f64 {
    let i = imgs.l2_normalized();
    let r = recs.l2_normalized();
    let m1 = median_rank(&ranks_of_matches(&i, &r));
    let m2 = median_rank(&ranks_of_matches(&r, &i));
    (m1 + m2) / 2.0
}

/// A trained scenario: the model plus everything needed to embed arbitrary
/// recipes and images (word vectors, sentence featuriser, cached dataset
/// features) and the training history.
pub struct TrainedModel {
    /// Which scenario produced this model.
    pub scenario: Scenario,
    /// The network with its best-validation parameters restored.
    pub model: TwoBranchModel,
    /// The pretrained word vectors (frozen).
    pub wv: WordVectors,
    /// The frozen sentence featuriser.
    pub featurizer: SentenceFeaturizer,
    /// Cached frozen features for the whole dataset.
    pub feats: RecipeFeatures,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Best validation MedR (the selected checkpoint's score).
    pub best_val_medr: f64,
    /// Epoch of the selected checkpoint.
    pub best_epoch: usize,
}

impl TrainedModel {
    /// Embeds the pairs with the given dataset ids. Returns raw
    /// (unnormalised) `(image, recipe)` embeddings, row-aligned with `ids`.
    pub fn embed_ids(&self, dataset: &Dataset, ids: &[usize]) -> (Embeddings, Embeddings) {
        embed_ids(&self.model, dataset, &self.feats, ids)
    }

    /// Embeds a whole split.
    pub fn embed_split(&self, dataset: &Dataset, split: Split) -> (Embeddings, Embeddings) {
        let ids: Vec<usize> = dataset.split_range(split).collect();
        self.embed_ids(dataset, &ids)
    }

    /// Embeds an arbitrary (possibly modified or hand-built) recipe through
    /// the text branch. Used by the ingredient-to-image and
    /// removing-ingredients tasks (Tables 4–5).
    pub fn embed_recipe(&self, recipe: &Recipe) -> Vec<f32> {
        let mcfg = self.model.config();
        let ingr = RecipeFeatures::cap_ingredients(recipe, mcfg.max_ingredients);
        let sents =
            RecipeFeatures::featurize_recipe(recipe, &self.wv, &self.featurizer, mcfg.max_sentences);
        self.embed_recipe_parts(&ingr, &sents)
    }

    /// Embeds a recipe given raw parts: capped ingredient tokens and frozen
    /// sentence features (e.g. the mean training-set instruction feature
    /// used by the ingredient-to-image protocol, §5.3).
    pub fn embed_recipe_parts(&self, ingr_tokens: &[usize], sent_feats: &[Vec<f32>]) -> Vec<f32> {
        let img_dim = self.model.store.value(
            self.model.store.by_name("image.adapter.w").expect("adapter"),
        ).rows;
        let dummy_img = vec![0.0f32; img_dim];
        let inputs = BatchInputs::from_parts(
            &[&dummy_img],
            &[ingr_tokens],
            &[sent_feats],
            self.feats.sent_dim,
        );
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (_, rec) = self.model.forward_batch(&mut g, &mut binds, &inputs);
        g.value(rec).row(0).to_vec()
    }

    /// Embeds raw frozen-CNN image features through the image branch.
    pub fn embed_image(&self, image_feats: &[f32]) -> Vec<f32> {
        let pad = cmr_word2vec::vocab::PAD;
        let sent = vec![vec![0.0f32; self.feats.sent_dim]];
        let inputs = BatchInputs::from_parts(
            &[image_feats],
            &[&[pad]],
            &[&sent],
            self.feats.sent_dim,
        );
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (img, _) = self.model.forward_batch(&mut g, &mut binds, &inputs);
        g.value(img).row(0).to_vec()
    }

    /// The mean frozen instruction-sentence feature over the training split
    /// — the paper's stand-in instruction for single-ingredient queries
    /// (§5.3, *Ingredient To Image*).
    pub fn mean_instruction_feature(&self, dataset: &Dataset) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.feats.sent_dim];
        let mut n = 0usize;
        for i in dataset.split_range(Split::Train) {
            for s in &self.feats.sent_feats[i] {
                for (m, &v) in mean.iter_mut().zip(s) {
                    *m += v;
                }
                n += 1;
            }
        }
        if n > 0 {
            for m in &mut mean {
                *m /= n as f32;
            }
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_data::{DataConfig, Scale};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DataConfig::for_scale(Scale::Tiny))
    }

    fn tiny_trainer(s: Scenario) -> Trainer {
        Trainer::new(s, TrainConfig::for_scale_tiny())
            .with_model_config(ModelConfig::tiny())
            .quiet()
    }

    /// Training the full AdaMine model on the tiny world must beat random
    /// retrieval by a wide margin — the end-to-end smoke test.
    #[test]
    fn adamine_learns_to_retrieve() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMine).run(&d);
        // random would give MedR ≈ val_subset/2 = 60
        assert!(
            trained.best_val_medr < 25.0,
            "val MedR {} after training",
            trained.best_val_medr
        );
        assert_eq!(trained.epochs.len(), 8);
        // adaptive curriculum: the active fraction must decay
        let first = trained.epochs.first().unwrap().active_fraction;
        let last = trained.epochs.last().unwrap().active_fraction;
        assert!(last < first, "active triplets should decay: {first} → {last}");
    }

    /// The classification-head scenario must build a head and still learn.
    #[test]
    fn ins_cls_scenario_trains_with_head() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMineInsCls).run(&d);
        assert!(trained.model.has_head());
        assert!(trained.best_val_medr < 30.0, "val MedR {}", trained.best_val_medr);
    }

    /// The hierarchical extension trains and retrieves.
    #[test]
    fn hierarchical_scenario_trains() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMineHier).run(&d);
        assert!(
            trained.best_val_medr < 30.0,
            "AdaMine_hier val MedR {}",
            trained.best_val_medr
        );
    }

    /// Embedding helpers agree with the batched pathway.
    #[test]
    fn single_recipe_embedding_matches_batched() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMineIns).run(&d);
        let ids = [3usize, 7];
        let (imgs, recs) = trained.embed_ids(&d, &ids);
        let solo_rec = trained.embed_recipe(&d.recipes[3]);
        let solo_img = trained.embed_image(d.image(7));
        for (a, b) in recs.vector(0).iter().zip(&solo_rec) {
            assert!((a - b).abs() < 1e-4, "recipe path diverged");
        }
        for (a, b) in imgs.vector(1).iter().zip(&solo_img) {
            assert!((a - b).abs() < 1e-4, "image path diverged");
        }
    }
}
