//! The training loop (§4.4), crash-safe checkpointing, and the
//! trained-model inference API.
//!
//! ## Robustness
//!
//! [`Trainer::fit`] is the hardened entry point: it returns a typed
//! [`TrainError`] instead of panicking, optionally persists a full
//! `CMRCKPT2` training-state checkpoint (parameters, Adam moments, RNG,
//! sampler order, epoch stats, best-model blob) to disk after every epoch
//! via [`CheckpointStore`], and can resume an interrupted run from that
//! checkpoint **bit-identically** — the resumed run ends with exactly the
//! parameters and statistics of an uninterrupted one. The step loop guards
//! against non-finite losses: a NaN/∞ batch is skipped (no backward pass,
//! no Adam update, moments untouched) and counted in
//! [`EpochStats::skipped_batches`]; after
//! [`TrainConfig::max_bad_batches`](crate::TrainConfig) *consecutive* bad
//! batches the epoch is rolled back to its last good state and retried
//! once before the run fails with [`TrainError::Diverged`].
//!
//! [`FaultPlan`] injects faults (NaN losses, kills between epochs) for the
//! fault-injection test suite.
//!
//! ## Observability
//!
//! With the `CMR_OBS` knob on (see [`cmr_obs`]), every epoch emits one
//! `train.epoch` series row — mean loss, validation MedR, the
//! active-triplet fraction β′ for *both* the instance and the semantic
//! loss, the learning phase, and the skipped-batch count — plus
//! `train.batches`/`train.skipped_batches` counters and
//! `train.checkpoint_save_s`/`train.checkpoint_load_s` latency histograms
//! around checkpoint persistence. With the knob off every hook is a single
//! atomic check.

use crate::config::{ConfigError, LossKind, ModelConfig, TrainConfig};
use crate::losses;
use crate::model::{BatchInputs, TwoBranchModel};
use crate::precompute::{RecipeFeatures, SentenceFeaturizer};
use crate::scenario::Scenario;
use cmr_data::{BatchSampler, Dataset, Recipe, Split};
use cmr_nn::{serialize, Adam, Bindings, CheckpointError, CheckpointStore, Slot, TrainState};
use cmr_retrieval::{median_rank, ranks_of_matches, Embeddings};
use cmr_tensor::Graph;
use cmr_word2vec::{SgnsConfig, WordVectors};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's applied (non-skipped) batches.
    pub mean_loss: f64,
    /// Validation median rank (mean of both directions) — the model
    /// selection criterion.
    pub val_medr: f64,
    /// Fraction of instance triplets still active — the adaptive-mining
    /// curriculum signal (starts near 1, decays as constraints are
    /// satisfied).
    pub active_fraction: f64,
    /// Batches skipped by the non-finite-loss guard this epoch.
    pub skipped_batches: usize,
}

/// Why a training run failed. Returned by [`Trainer::fit`].
#[derive(Debug)]
pub enum TrainError {
    /// The training configuration violates one of its documented
    /// constraints (caught before any work starts).
    Config(ConfigError),
    /// The epoch loop never produced a model (zero scheduled epochs and no
    /// checkpointed best to fall back on).
    NoEpochs,
    /// Saving or loading a checkpoint failed (IO error, corrupt blob, or
    /// an architecture mismatch against the checkpoint).
    Checkpoint(CheckpointError),
    /// The non-finite guard tripped `max_bad_batches` times in a row and a
    /// rollback retry of the epoch diverged again.
    Diverged {
        /// Epoch that could not be completed.
        epoch: usize,
        /// Non-finite batches skipped in the failing pass.
        skipped: usize,
    },
    /// A [`FaultPlan`] kill fired after the given epoch (its checkpoint,
    /// when checkpointing is enabled, is already durable on disk).
    Interrupted {
        /// Last completed epoch.
        epoch: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Config(e) => write!(f, "{e}"),
            TrainError::NoEpochs => write!(f, "training produced no epochs and no model"),
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::Diverged { epoch, skipped } => write!(
                f,
                "epoch {epoch} diverged: {skipped} consecutive non-finite batches survived a rollback retry"
            ),
            TrainError::Interrupted { epoch } => {
                write!(f, "training interrupted after epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Config(e) => Some(e),
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// Deterministic fault injection for the robustness test suite.
///
/// All hooks default to "never fire". Closures are `Fn` so a plan can be
/// consulted repeatedly; use interior mutability (e.g. [`std::cell::Cell`])
/// for one-shot transient faults.
#[derive(Default)]
pub struct FaultPlan {
    nan_loss: Option<Box<dyn Fn(usize, usize) -> bool>>,
    kill_after_epoch: Option<Box<dyn Fn(usize) -> bool>>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Replaces the computed loss of every `(epoch, batch)` the predicate
    /// selects with NaN, exercising the non-finite guard.
    pub fn with_nan_loss(mut self, f: impl Fn(usize, usize) -> bool + 'static) -> Self {
        self.nan_loss = Some(Box::new(f));
        self
    }

    /// Simulates a kill: after each epoch the predicate selects (post
    /// checkpoint write), `fit` aborts with [`TrainError::Interrupted`].
    pub fn with_kill_after_epoch(mut self, f: impl Fn(usize) -> bool + 'static) -> Self {
        self.kill_after_epoch = Some(Box::new(f));
        self
    }

    fn injects_nan(&self, epoch: usize, batch: usize) -> bool {
        self.nan_loss.as_ref().is_some_and(|f| f(epoch, batch))
    }

    fn kills_after(&self, epoch: usize) -> bool {
        self.kill_after_epoch.as_ref().is_some_and(|f| f(epoch))
    }
}

/// Drives one scenario's training run end to end: word2vec pretraining,
/// frozen-feature precomputation, the two-phase freeze schedule, and model
/// selection by validation MedR.
pub struct Trainer {
    scenario: Scenario,
    tcfg: TrainConfig,
    mcfg: ModelConfig,
    quiet: bool,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    faults: FaultPlan,
}

impl Trainer {
    /// Creates a trainer for a scenario with default model dimensions.
    pub fn new(scenario: Scenario, tcfg: TrainConfig) -> Self {
        Self {
            scenario,
            tcfg,
            mcfg: ModelConfig::default(),
            quiet: false,
            checkpoint_dir: None,
            resume: false,
            faults: FaultPlan::none(),
        }
    }

    /// Overrides the architecture configuration.
    pub fn with_model_config(mut self, mcfg: ModelConfig) -> Self {
        self.mcfg = mcfg;
        self
    }

    /// Suppresses per-epoch progress lines. Progress is routed through
    /// [`cmr_obs::log`], so lines only appear when `CMR_OBS` telemetry is
    /// enabled *and* the trainer is not quiet.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Enables durable checkpointing: after every epoch the full training
    /// state is written to `dir` (rotating `latest`/`best` pairs, atomic
    /// renames).
    pub fn with_checkpoints(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from the checkpoint directory's `latest` state (requires
    /// [`with_checkpoints`](Self::with_checkpoints)). A missing checkpoint
    /// is a cold start, a corrupt `latest` falls back to the previous good
    /// file, and a legacy v1 param-only blob restores weights but restarts
    /// the schedule at epoch 0.
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Installs a fault-injection plan (tests only).
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Runs the full §4.4 pipeline and returns the best-validation model.
    ///
    /// Compatibility wrapper over [`fit`](Self::fit).
    ///
    /// # Panics
    /// Panics on any [`TrainError`]; call `fit` to handle failures.
    pub fn run(&self, dataset: &Dataset) -> TrainedModel {
        // cmr-lint: allow(no-panic-lib) documented panicking compatibility wrapper over fit()
        self.fit(dataset).unwrap_or_else(|e| panic!("training failed: {e}"))
    }

    /// Runs the full §4.4 pipeline with crash-safety: typed errors, durable
    /// checkpoints, resume, and non-finite-loss guards.
    ///
    /// # Errors
    /// See [`TrainError`].
    pub fn fit(&self, dataset: &Dataset) -> Result<TrainedModel, TrainError> {
        let tcfg = self.scenario.apply_to(self.tcfg.clone());
        tcfg.validate().map_err(TrainError::Config)?;
        let n_classes = dataset.world.config().n_classes;
        let mcfg = self.scenario.apply_to_model(self.mcfg.clone(), n_classes);

        let mut rng = SmallRng::seed_from_u64(tcfg.seed);

        // 1. word2vec pretraining on the training corpus (§3.2.1).
        let w2v_cfg = SgnsConfig {
            dim: mcfg.word_dim,
            epochs: tcfg.w2v_epochs,
            ..Default::default()
        };
        let wv = cmr_word2vec::train(
            &dataset.word2vec_corpus(),
            dataset.world.vocab.len(),
            &w2v_cfg,
            &mut rng,
        );

        // 2. frozen text features.
        let featurizer = SentenceFeaturizer::new(&mut rng, mcfg.word_dim, mcfg.sent_feat_dim);
        let feats =
            RecipeFeatures::build(dataset, &wv, &featurizer, mcfg.max_ingredients, mcfg.max_sentences);

        // 3. model + optimiser, backbone frozen for phase one.
        let mut model = TwoBranchModel::new(&mcfg, &wv, dataset.image_dim);
        model.set_backbone_frozen(tcfg.freeze_epochs > 0);
        let mut adam = Adam::new(tcfg.lr);

        // 4. fixed validation subset for model selection.
        let mut val_ids: Vec<usize> = dataset.split_range(Split::Val).collect();
        val_ids.shuffle(&mut rng);
        val_ids.truncate(tcfg.val_subset.max(10).min(val_ids.len()));

        let mut sampler = BatchSampler::new(dataset, Split::Train, tcfg.batch_size);
        let mut stats: Vec<EpochStats> = Vec::with_capacity(tcfg.epochs);
        let mut best: Option<(f64, usize, Vec<u8>)> = None;
        let mut start_epoch = 0usize;

        // 5. durable checkpointing / resume.
        let ckpts = match &self.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::open(dir).map_err(TrainError::Checkpoint)?),
            None => None,
        };
        if self.resume {
            if let Some(cs) = &ckpts {
                let loaded = {
                    let _load_span = cmr_obs::span("train.checkpoint_load_s");
                    cs.load(Slot::Latest, |bytes| {
                        serialize::load_checkpoint(&mut model.store, &mut adam, bytes)
                    })
                    .map_err(TrainError::Checkpoint)?
                };
                match loaded {
                    Some(Some(ts)) => {
                        apply_train_state(&ts, &mut rng, &mut stats, &mut best, &mut sampler)
                            .map_err(|source| {
                                TrainError::Checkpoint(CheckpointError::Decode { source })
                            })?;
                        start_epoch = ts.next_epoch as usize;
                        if !self.quiet {
                            cmr_obs::log(&format!(
                                "[{}] resuming at epoch {start_epoch} (best val MedR {:.1} @ epoch {})",
                                self.scenario.name(),
                                ts.best_val,
                                ts.best_epoch
                            ));
                        }
                    }
                    Some(None) => {
                        // v1 param-only blob: weights restored, schedule
                        // restarts — re-impose the phase-one freeze.
                        model.set_backbone_frozen(tcfg.freeze_epochs > 0);
                        if !self.quiet {
                            cmr_obs::log(&format!(
                                "[{}] resuming from a v1 param-only checkpoint: restarting at epoch 0",
                                self.scenario.name()
                            ));
                        }
                    }
                    None => {}
                }
            }
        }

        for epoch in start_epoch..tcfg.epochs {
            if epoch == tcfg.freeze_epochs {
                model.set_backbone_frozen(false);
            }
            // Epoch-start snapshot: the rollback target if the non-finite
            // guard trips `max_bad_batches` times in a row.
            let epoch_start = snapshot(&model, &adam, &rng, epoch, &stats, &best, &sampler);
            let mut retried = false;

            let (mean_loss, active_ins, active_sem, skipped) = loop {
                match self.run_epoch(
                    epoch, &tcfg, dataset, &feats, &mut model, &mut adam, &mut sampler, &mut rng,
                ) {
                    EpochOutcome::Done { mean_loss, active_ins, active_sem, skipped } => {
                        break (mean_loss, active_ins, active_sem, skipped);
                    }
                    EpochOutcome::Aborted { skipped } => {
                        if retried {
                            return Err(TrainError::Diverged { epoch, skipped });
                        }
                        if !self.quiet {
                            cmr_obs::log(&format!(
                                "[{}] epoch {epoch}: {skipped} consecutive non-finite batches — rolling back to last good state",
                                self.scenario.name()
                            ));
                        }
                        restore_snapshot(
                            &epoch_start, &mut model, &mut adam, &mut rng, &mut stats, &mut best,
                            &mut sampler,
                        )
                        .map_err(|source| {
                            TrainError::Checkpoint(CheckpointError::Decode { source })
                        })?;
                        retried = true;
                    }
                }
            };

            // model selection on validation MedR
            let (vi, vr) = embed_ids(&model, dataset, &feats, &val_ids);
            let medr = val_medr(&vi, &vr);
            stats.push(EpochStats {
                epoch,
                mean_loss,
                val_medr: medr,
                active_fraction: active_ins,
                skipped_batches: skipped,
            });
            // Per-epoch telemetry: the adaptive-mining curriculum signal β′
            // for both losses, the learning phase (0 = frozen backbone,
            // 1 = full fine-tuning), and throughput counters.
            cmr_obs::series_push(
                "train.epoch",
                &[
                    ("epoch", epoch as f64),
                    ("mean_loss", mean_loss),
                    ("val_medr", medr),
                    ("active_frac_ins", active_ins),
                    ("active_frac_sem", active_sem),
                    ("skipped_batches", skipped as f64),
                    ("phase", if epoch < tcfg.freeze_epochs { 0.0 } else { 1.0 }),
                ],
            );
            cmr_obs::counter_add("train.batches", sampler.batches_per_epoch() as u64);
            cmr_obs::counter_add("train.skipped_batches", skipped as u64);
            if !self.quiet {
                let skip_note =
                    if skipped > 0 { format!("  skipped {skipped}") } else { String::new() };
                cmr_obs::log(&format!(
                    "[{}] epoch {epoch:>2}: loss {mean_loss:.4}  val MedR {medr:.1}  active {:.0}%{skip_note}",
                    self.scenario.name(),
                    active_ins * 100.0
                ));
            }
            let improved = best.as_ref().is_none_or(|(m, _, _)| medr < *m);
            if improved {
                best = Some((medr, epoch, serialize::save_params(&model.store)));
            }
            if let Some(cs) = &ckpts {
                // The span covers serialization plus both durable writes —
                // the full per-epoch persistence cost.
                let _save_span = cmr_obs::span("train.checkpoint_save_s");
                let blob = snapshot(&model, &adam, &rng, epoch + 1, &stats, &best, &sampler);
                cs.save(Slot::Latest, &blob).map_err(TrainError::Checkpoint)?;
                if improved {
                    cs.save(Slot::Best, &blob).map_err(TrainError::Checkpoint)?;
                }
            }
            if self.faults.kills_after(epoch) {
                return Err(TrainError::Interrupted { epoch });
            }
        }

        // restore the best-validation checkpoint (§4.4 model selection)
        let (best_val_medr, best_epoch, blob) = best.ok_or(TrainError::NoEpochs)?;
        serialize::load_params(&mut model.store, &blob)
            .map_err(|source| TrainError::Checkpoint(CheckpointError::Decode { source }))?;

        Ok(TrainedModel {
            scenario: self.scenario,
            model,
            wv,
            featurizer,
            feats,
            epochs: stats,
            best_val_medr,
            best_epoch,
        })
    }

    /// One pass over the epoch's batches with the non-finite guard.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch(
        &self,
        epoch: usize,
        tcfg: &TrainConfig,
        dataset: &Dataset,
        feats: &RecipeFeatures,
        model: &mut TwoBranchModel,
        adam: &mut Adam,
        sampler: &mut BatchSampler,
        rng: &mut SmallRng,
    ) -> EpochOutcome {
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        let mut active_ins_sum = 0.0f64;
        let mut active_ins_n = 0usize;
        let mut active_sem_sum = 0.0f64;
        let mut active_sem_n = 0usize;
        let mut skipped = 0usize;
        let mut consecutive_bad = 0usize;

        for batch_idx in 0..sampler.batches_per_epoch() {
            let ids = sampler.next_batch(rng);
            let labels: Vec<Option<usize>> =
                // cmr-lint: allow(panic-path) batch ids come from the sampler built over this same dataset
                ids.iter().map(|&i| dataset.recipes[i].label).collect();
            let inputs = BatchInputs::gather(dataset, feats, &ids);

            let mut g = Graph::new();
            let mut binds = Bindings::new();
            let (img, rec) = model.forward_batch(&mut g, &mut binds, &inputs);
            let d_ir = losses::cosine_distance_matrix(&mut g, img, rec);
            let d_ri = losses::cosine_distance_matrix(&mut g, rec, img);

            let mut total = None;
            // Active-triplet accounting (per loss) is deferred until the
            // batch passes the finite check — skipped batches contribute no
            // statistics.
            let mut batch_ins: Option<(usize, usize)> = None;
            let mut batch_sem: Option<(usize, usize)> = None;
            match tcfg.loss {
                LossKind::Triplet { semantic, classification } => {
                    if !self.scenario.semantic_only() {
                        let a = losses::instance_hinge(&mut g, d_ir, tcfg.margin);
                        let b = losses::instance_hinge(&mut g, d_ri, tcfg.margin);
                        batch_ins = Some((a.active + b.active, a.total + b.total));
                        total = losses::combine_directions(&mut g, a, b, tcfg.strategy);
                    }
                    if semantic {
                        let sem_ir = losses::semantic_masks(&labels, rng);
                        let sem_ri = losses::semantic_masks(&labels, rng);
                        if let (Some((p1, n1)), Some((p2, n2))) = (sem_ir, sem_ri) {
                            let a = losses::semantic_hinge(&mut g, d_ir, &p1, &n1, tcfg.margin);
                            let b = losses::semantic_hinge(&mut g, d_ri, &p2, &n2, tcfg.margin);
                            batch_sem = Some((a.active + b.active, a.total + b.total));
                            if let Some(sem) =
                                losses::combine_directions(&mut g, a, b, tcfg.strategy)
                            {
                                let weighted = g.scale(sem, tcfg.lambda);
                                total = Some(match total {
                                    Some(t) => g.add(t, weighted),
                                    None => weighted,
                                });
                            }
                        }
                    }
                    if self.scenario.hierarchical() {
                        // Future-work extension: a coarser semantic level
                        // over class super-groups, with a doubled margin
                        // (groups must separate further than classes) at
                        // half the semantic weight.
                        let groups: Vec<Option<usize>> = labels
                            .iter()
                            .map(|l| l.map(|c| dataset.world.class_group(c)))
                            .collect();
                        let g_ir = losses::semantic_masks(&groups, rng);
                        let g_ri = losses::semantic_masks(&groups, rng);
                        if let (Some((p1, n1)), Some((p2, n2))) = (g_ir, g_ri) {
                            let margin = 2.0 * tcfg.margin;
                            let a = losses::semantic_hinge(&mut g, d_ir, &p1, &n1, margin);
                            let b = losses::semantic_hinge(&mut g, d_ri, &p2, &n2, margin);
                            if let Some(hier) =
                                losses::combine_directions(&mut g, a, b, tcfg.strategy)
                            {
                                let weighted = g.scale(hier, 0.5 * tcfg.lambda);
                                total = Some(match total {
                                    Some(t) => g.add(t, weighted),
                                    None => weighted,
                                });
                            }
                        }
                    }
                    if classification {
                        let cls =
                            self.classification_term(&mut g, &mut binds, model, img, rec, &labels);
                        let weighted = g.scale(cls, tcfg.cls_weight);
                        total = Some(match total {
                            Some(t) => g.add(t, weighted),
                            None => weighted,
                        });
                    }
                }
                LossKind::Pairwise { pos_margin, neg_margin } => {
                    let pw = losses::pairwise_loss(&mut g, d_ir, pos_margin, neg_margin);
                    let cls =
                        self.classification_term(&mut g, &mut binds, model, img, rec, &labels);
                    let weighted = g.scale(cls, tcfg.cls_weight);
                    total = Some(g.add(pw, weighted));
                }
            }

            if let Some(loss) = total {
                let mut lv = g.value(loss).scalar();
                if self.faults.injects_nan(epoch, batch_idx) {
                    lv = f32::NAN;
                }
                if !lv.is_finite() {
                    // Non-finite guard: no backward pass, no Adam step —
                    // parameters and moments stay untouched.
                    skipped += 1;
                    consecutive_bad += 1;
                    if consecutive_bad >= tcfg.max_bad_batches {
                        return EpochOutcome::Aborted { skipped };
                    }
                    continue;
                }
                consecutive_bad = 0;
                if let Some((active, total_triplets)) = batch_ins {
                    active_ins_sum += active as f64 / total_triplets.max(1) as f64;
                    active_ins_n += 1;
                }
                if let Some((active, total_triplets)) = batch_sem {
                    active_sem_sum += active as f64 / total_triplets.max(1) as f64;
                    active_sem_n += 1;
                }
                loss_sum += lv as f64;
                loss_n += 1;
                g.backward(loss);
                adam.step(&mut model.store, &g, &binds);
            }
        }

        let mean_loss = if loss_n > 0 { loss_sum / loss_n as f64 } else { 0.0 };
        let active_ins =
            if active_ins_n > 0 { active_ins_sum / active_ins_n as f64 } else { 0.0 };
        let active_sem =
            if active_sem_n > 0 { active_sem_sum / active_sem_n as f64 } else { 0.0 };
        EpochOutcome::Done { mean_loss, active_ins, active_sem, skipped }
    }

    fn classification_term(
        &self,
        g: &mut Graph,
        binds: &mut Bindings,
        model: &TwoBranchModel,
        img: cmr_tensor::NodeId,
        rec: cmr_tensor::NodeId,
        labels: &[Option<usize>],
    ) -> cmr_tensor::NodeId {
        let targets = losses::cls_targets(labels);
        let li = model.classify(g, binds, img);
        let ce_i = g.softmax_cross_entropy(li, targets.clone());
        let lr = model.classify(g, binds, rec);
        let ce_r = g.softmax_cross_entropy(lr, targets);
        let s = g.add(ce_i, ce_r);
        g.scale(s, 0.5)
    }
}

/// How one pass over an epoch's batches ended.
enum EpochOutcome {
    /// All batches consumed (some possibly skipped by the guard).
    Done {
        mean_loss: f64,
        /// Mean active fraction of the instance loss (β′ for L_ins).
        active_ins: f64,
        /// Mean active fraction of the semantic loss (β′ for L_sem); 0.0
        /// when the scenario has no semantic term.
        active_sem: f64,
        skipped: usize,
    },
    /// `max_bad_batches` consecutive non-finite batches — roll back.
    Aborted { skipped: usize },
}

// ---------------------------------------------------------------------------
// Full-training-state snapshots (the trainer-owned `extra` section of a
// CMRCKPT2 blob: epoch stats, best-model blob, sampler order).
// ---------------------------------------------------------------------------

/// Minimal checked little-endian reader for the trainer's `extra` section.
struct Wire<'a> {
    buf: &'a [u8],
}

impl<'a> Wire<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trainer state truncated: wanted {n} bytes, {} left", self.buf.len()),
            ));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Consumes exactly `N` bytes as an array; no panic path once `take`
    /// succeeds.
    fn array<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        let head = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        Ok(out)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.array()?))
    }
}

fn encode_extra(
    stats: &[EpochStats],
    best: &Option<(f64, usize, Vec<u8>)>,
    sampler: &BatchSampler,
) -> Vec<u8> {
    let mut buf = Vec::new();
    // cmr-lint: allow(lossy-cast) checkpoint format length field; param count never nears 2^32
    buf.extend_from_slice(&(stats.len() as u32).to_le_bytes());
    for s in stats {
        buf.extend_from_slice(&(s.epoch as u64).to_le_bytes());
        buf.extend_from_slice(&s.mean_loss.to_le_bytes());
        buf.extend_from_slice(&s.val_medr.to_le_bytes());
        buf.extend_from_slice(&s.active_fraction.to_le_bytes());
        buf.extend_from_slice(&(s.skipped_batches as u64).to_le_bytes());
    }
    match best {
        Some((_, _, blob)) => {
            buf.push(1);
            // cmr-lint: allow(lossy-cast) checkpoint format length field; moment blobs are MBs, not GBs
            buf.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            buf.extend_from_slice(blob);
        }
        None => buf.push(0),
    }
    let (order, cursor) = sampler.state();
    let cursor = if cursor == usize::MAX { u64::MAX } else { cursor as u64 };
    buf.extend_from_slice(&cursor.to_le_bytes());
    // cmr-lint: allow(lossy-cast) checkpoint format length field; sampler order is bounded by the dataset size
    buf.extend_from_slice(&(order.len() as u32).to_le_bytes());
    for id in order {
        buf.extend_from_slice(&(id as u64).to_le_bytes());
    }
    buf
}

type DecodedExtra = (Vec<EpochStats>, Option<Vec<u8>>, Vec<usize>, usize);

fn decode_extra(extra: &[u8]) -> io::Result<DecodedExtra> {
    let mut w = Wire { buf: extra };
    let n_stats = w.u32()? as usize;
    // Each stat row is 40 wire bytes; a count the payload cannot hold is
    // hostile or corrupt — reject it before allocating.
    if n_stats > w.buf.len() / 40 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trainer state claims {n_stats} epoch stats in {} bytes", w.buf.len()),
        ));
    }
    let mut stats = Vec::with_capacity(n_stats);
    for _ in 0..n_stats {
        stats.push(EpochStats {
            epoch: w.u64()? as usize,
            mean_loss: w.f64()?,
            val_medr: w.f64()?,
            active_fraction: w.f64()?,
            skipped_batches: w.u64()? as usize,
        });
    }
    let best_blob = if w.u8()? != 0 {
        let len = w.u32()? as usize;
        Some(w.take(len)?.to_vec())
    } else {
        None
    };
    let cursor = w.u64()?;
    let cursor = if cursor == u64::MAX { usize::MAX } else { cursor as usize };
    let n_order = w.u32()? as usize;
    // Sampler order entries are 8 wire bytes each; same hostile-count
    // rejection as above.
    if n_order > w.buf.len() / 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trainer state claims {n_order} order entries in {} bytes", w.buf.len()),
        ));
    }
    let mut order = Vec::with_capacity(n_order);
    for _ in 0..n_order {
        order.push(w.u64()? as usize);
    }
    if !w.buf.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} trailing bytes in trainer state", w.buf.len()),
        ));
    }
    Ok((stats, best_blob, order, cursor))
}

/// Serialises the complete training state — model, optimiser, RNG, stats,
/// best model, sampler — as one CMRCKPT2 blob.
fn snapshot(
    model: &TwoBranchModel,
    adam: &Adam,
    rng: &SmallRng,
    next_epoch: usize,
    stats: &[EpochStats],
    best: &Option<(f64, usize, Vec<u8>)>,
    sampler: &BatchSampler,
) -> Vec<u8> {
    let state = TrainState {
        rng: rng.state(),
        next_epoch: next_epoch as u64,
        best_epoch: best.as_ref().map(|&(_, e, _)| e as u64).unwrap_or(0),
        best_val: best.as_ref().map(|&(v, _, _)| v).unwrap_or(f64::INFINITY),
        extra: encode_extra(stats, best, sampler),
    };
    serialize::save_checkpoint(&model.store, adam, &state)
}

fn apply_train_state(
    ts: &TrainState,
    rng: &mut SmallRng,
    stats: &mut Vec<EpochStats>,
    best: &mut Option<(f64, usize, Vec<u8>)>,
    sampler: &mut BatchSampler,
) -> io::Result<()> {
    let (decoded_stats, best_blob, order, cursor) = decode_extra(&ts.extra)?;
    sampler
        .restore_state(&order, cursor)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    *rng = SmallRng::from_state(ts.rng);
    *stats = decoded_stats;
    *best = best_blob.map(|blob| (ts.best_val, ts.best_epoch as usize, blob));
    Ok(())
}

/// Restores a full in-memory snapshot produced by [`snapshot`] (the
/// rollback path of the non-finite guard).
fn restore_snapshot(
    bytes: &[u8],
    model: &mut TwoBranchModel,
    adam: &mut Adam,
    rng: &mut SmallRng,
    stats: &mut Vec<EpochStats>,
    best: &mut Option<(f64, usize, Vec<u8>)>,
    sampler: &mut BatchSampler,
) -> io::Result<()> {
    let ts = serialize::load_checkpoint(&mut model.store, adam, bytes)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "snapshot is not a v2 checkpoint")
    })?;
    apply_train_state(&ts, rng, stats, best, sampler)
}

fn embed_ids(
    model: &TwoBranchModel,
    dataset: &Dataset,
    feats: &RecipeFeatures,
    ids: &[usize],
) -> (Embeddings, Embeddings) {
    let dim = model.config().latent_dim;
    let mut imgs = Embeddings::with_capacity(dim, ids.len());
    let mut recs = Embeddings::with_capacity(dim, ids.len());
    // Wide chunks keep the row-parallel matmul kernels saturated: each
    // forward pass splits its batch across the worker threads, so the
    // chunk size bounds the available parallelism per call.
    for chunk in ids.chunks(512) {
        let inputs = BatchInputs::gather(dataset, feats, chunk);
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (img, rec) = model.forward_batch(&mut g, &mut binds, &inputs);
        let iv = g.value(img);
        let rv = g.value(rec);
        for r in 0..chunk.len() {
            imgs.push(iv.row(r));
            recs.push(rv.row(r));
        }
    }
    (imgs, recs)
}

fn val_medr(imgs: &Embeddings, recs: &Embeddings) -> f64 {
    let i = imgs.l2_normalized();
    let r = recs.l2_normalized();
    let m1 = median_rank(&ranks_of_matches(&i, &r));
    let m2 = median_rank(&ranks_of_matches(&r, &i));
    (m1 + m2) / 2.0
}

/// A trained scenario: the model plus everything needed to embed arbitrary
/// recipes and images (word vectors, sentence featuriser, cached dataset
/// features) and the training history.
pub struct TrainedModel {
    /// Which scenario produced this model.
    pub scenario: Scenario,
    /// The network with its best-validation parameters restored.
    pub model: TwoBranchModel,
    /// The pretrained word vectors (frozen).
    pub wv: WordVectors,
    /// The frozen sentence featuriser.
    pub featurizer: SentenceFeaturizer,
    /// Cached frozen features for the whole dataset.
    pub feats: RecipeFeatures,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Best validation MedR (the selected checkpoint's score).
    pub best_val_medr: f64,
    /// Epoch of the selected checkpoint.
    pub best_epoch: usize,
}

impl TrainedModel {
    /// Embeds the pairs with the given dataset ids. Returns raw
    /// (unnormalised) `(image, recipe)` embeddings, row-aligned with `ids`.
    pub fn embed_ids(&self, dataset: &Dataset, ids: &[usize]) -> (Embeddings, Embeddings) {
        embed_ids(&self.model, dataset, &self.feats, ids)
    }

    /// Embeds a whole split.
    pub fn embed_split(&self, dataset: &Dataset, split: Split) -> (Embeddings, Embeddings) {
        let ids: Vec<usize> = dataset.split_range(split).collect();
        self.embed_ids(dataset, &ids)
    }

    /// Embeds an arbitrary (possibly modified or hand-built) recipe through
    /// the text branch. Used by the ingredient-to-image and
    /// removing-ingredients tasks (Tables 4–5).
    pub fn embed_recipe(&self, recipe: &Recipe) -> Vec<f32> {
        let mcfg = self.model.config();
        let ingr = RecipeFeatures::cap_ingredients(recipe, mcfg.max_ingredients);
        let sents =
            RecipeFeatures::featurize_recipe(recipe, &self.wv, &self.featurizer, mcfg.max_sentences);
        self.embed_recipe_parts(&ingr, &sents)
    }

    /// Embeds a recipe given raw parts: capped ingredient tokens and frozen
    /// sentence features (e.g. the mean training-set instruction feature
    /// used by the ingredient-to-image protocol, §5.3).
    pub fn embed_recipe_parts(&self, ingr_tokens: &[usize], sent_feats: &[Vec<f32>]) -> Vec<f32> {
        let dummy_img = vec![0.0f32; self.model.image_dim()];
        let inputs = BatchInputs::from_parts(
            &[&dummy_img],
            &[ingr_tokens],
            &[sent_feats],
            self.feats.sent_dim,
        );
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (_, rec) = self.model.forward_batch(&mut g, &mut binds, &inputs);
        g.value(rec).row(0).to_vec()
    }

    /// Embeds raw frozen-CNN image features through the image branch.
    pub fn embed_image(&self, image_feats: &[f32]) -> Vec<f32> {
        let pad = cmr_word2vec::vocab::PAD;
        let sent = vec![vec![0.0f32; self.feats.sent_dim]];
        let inputs = BatchInputs::from_parts(
            &[image_feats],
            &[&[pad]],
            &[&sent],
            self.feats.sent_dim,
        );
        let mut g = Graph::new();
        let mut binds = Bindings::new();
        let (img, _) = self.model.forward_batch(&mut g, &mut binds, &inputs);
        g.value(img).row(0).to_vec()
    }

    /// The mean frozen instruction-sentence feature over the training split
    /// — the paper's stand-in instruction for single-ingredient queries
    /// (§5.3, *Ingredient To Image*).
    pub fn mean_instruction_feature(&self, dataset: &Dataset) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.feats.sent_dim];
        let mut n = 0usize;
        for i in dataset.split_range(Split::Train) {
            // cmr-lint: allow(panic-path) feats were precomputed over every pair id of this same dataset
            for s in &self.feats.sent_feats[i] {
                for (m, &v) in mean.iter_mut().zip(s) {
                    *m += v;
                }
                n += 1;
            }
        }
        if n > 0 {
            for m in &mut mean {
                *m /= n as f32;
            }
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_data::{DataConfig, Scale};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DataConfig::for_scale(Scale::Tiny))
    }

    fn tiny_trainer(s: Scenario) -> Trainer {
        Trainer::new(s, TrainConfig::for_scale_tiny())
            .with_model_config(ModelConfig::tiny())
            .quiet()
    }

    /// Training the full AdaMine model on the tiny world must beat random
    /// retrieval by a wide margin — the end-to-end smoke test.
    #[test]
    fn adamine_learns_to_retrieve() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMine).run(&d);
        // random would give MedR ≈ val_subset/2 = 60
        assert!(
            trained.best_val_medr < 25.0,
            "val MedR {} after training",
            trained.best_val_medr
        );
        assert_eq!(trained.epochs.len(), 8);
        // adaptive curriculum: the active fraction must decay
        let first = trained.epochs.first().unwrap().active_fraction;
        let last = trained.epochs.last().unwrap().active_fraction;
        assert!(last < first, "active triplets should decay: {first} → {last}");
        // no fault injection: nothing skipped
        assert!(trained.epochs.iter().all(|e| e.skipped_batches == 0));
    }

    /// The classification-head scenario must build a head and still learn.
    #[test]
    fn ins_cls_scenario_trains_with_head() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMineInsCls).run(&d);
        assert!(trained.model.has_head());
        assert!(trained.best_val_medr < 30.0, "val MedR {}", trained.best_val_medr);
    }

    /// The hierarchical extension trains and retrieves.
    #[test]
    fn hierarchical_scenario_trains() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMineHier).run(&d);
        assert!(
            trained.best_val_medr < 30.0,
            "AdaMine_hier val MedR {}",
            trained.best_val_medr
        );
    }

    /// Embedding helpers agree with the batched pathway.
    #[test]
    fn single_recipe_embedding_matches_batched() {
        let d = tiny_dataset();
        let trained = tiny_trainer(Scenario::AdaMineIns).run(&d);
        let ids = [3usize, 7];
        let (imgs, recs) = trained.embed_ids(&d, &ids);
        let solo_rec = trained.embed_recipe(&d.recipes[3]);
        let solo_img = trained.embed_image(d.image(7));
        for (a, b) in recs.vector(0).iter().zip(&solo_rec) {
            assert!((a - b).abs() < 1e-4, "recipe path diverged");
        }
        for (a, b) in imgs.vector(1).iter().zip(&solo_img) {
            assert!((a - b).abs() < 1e-4, "image path diverged");
        }
    }

    /// `fit` and `run` agree — the compat wrapper changes nothing.
    #[test]
    fn fit_returns_ok_and_matches_run() {
        let d = tiny_dataset();
        let a = tiny_trainer(Scenario::AdaMineIns).fit(&d).expect("fit succeeds");
        let b = tiny_trainer(Scenario::AdaMineIns).run(&d);
        assert_eq!(a.best_val_medr, b.best_val_medr);
        assert_eq!(a.epochs, b.epochs);
    }
}
