//! The paper's losses (§3.2.2–3.3) and the baselines' losses (§4.3).
//!
//! All losses operate on a **cosine-distance matrix** `D: (B, B)` between
//! the two modalities of a batch (`D[q][j] = 1 − cos(emb_q, emb_j)`), built
//! differentiably so gradients flow into both branches.
//!
//! The adaptive-mining update `δ_adm` (Eq. 4–5) normalises each loss by its
//! number of *active* triplets β′ instead of the total count. Because the
//! tape is eager, the forward hinge values are available while the loss is
//! being built, so β′ is read off and baked in as a constant scale — which
//! yields exactly `Σ ∇ℓ / β′` on backward, the paper's update.

use crate::config::Strategy;
use cmr_tensor::{Graph, NodeId, TensorData};
use rand::seq::SliceRandom;
use rand::Rng;

/// One direction's worth of an (instance or semantic) triplet loss: the
/// un-normalised hinge sum plus the triplet counts needed for either
/// aggregation strategy.
pub struct TripletTerm {
    /// `Σ hinge` over this direction's triplets (absent when the direction
    /// contributed no triplets at all, e.g. no labeled pairs in the batch).
    pub sum: Option<NodeId>,
    /// β′: triplets with a strictly positive hinge.
    pub active: usize,
    /// All triplets considered (the averaging strategy's denominator).
    pub total: usize,
}

/// Differentiable cosine-distance matrix `(rows(a), rows(b))` between two
/// unnormalised embedding batches.
pub fn cosine_distance_matrix(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let an = g.row_l2_normalize(a);
    let bn = g.row_l2_normalize(b);
    let sim = g.matmul_transb(an, bn);
    let neg = g.scale(sim, -1.0);
    g.add_scalar(neg, 1.0)
}

/// Instance (retrieval) triplet hinge for queries = rows of `dist`
/// (Eq. 2): `ℓ_ins(q, j) = [d(q, q) + α − d(q, j)]₊` for every `j ≠ q`.
/// Every non-matching item of the other modality is a negative — the
/// paper's per-batch sampling (§4.4).
///
/// # Panics
/// Panics if `dist` is not square.
pub fn instance_hinge(g: &mut Graph, dist: NodeId, margin: f32) -> TripletTerm {
    let n = g.value(dist).rows;
    // cmr-lint: allow(panic-path) documented precondition: the caller built dist as a square batch matrix
    assert_eq!(g.value(dist).cols, n, "instance_hinge: distance matrix must be square");
    let dpos = g.diag_to_col(dist);
    let neg = g.scale(dist, -1.0);
    let shifted = g.add_scalar(neg, margin);
    let pre = g.add_col_broadcast(shifted, dpos);
    let hinge = g.relu(pre);

    let mut mask = TensorData::full(n, n, 1.0);
    for i in 0..n {
        mask.set(i, i, 0.0);
    }
    let mask = g.leaf(mask, false);
    let masked = g.mul(hinge, mask);
    let active = g.value(masked).data.iter().filter(|&&v| v > 0.0).count();
    let sum = g.sum_all(masked);
    TripletTerm { sum: Some(sum), active, total: n * (n - 1) }
}

/// The semantic positive/negative selection masks for one direction
/// (§4.4, *Triplet sampling*):
///
/// * positive: **one** random item sharing the query's class (excluding the
///   matching pair itself),
/// * negatives: items of *different known* classes, subsampled to the
///   smallest negative-set size in the batch "for fair comparison between
///   queries".
///
/// Returns `None` when no query yields a complete triplet. Unlabeled items
/// never participate (their class is unknown).
// cmr-lint: allow(panic-path) every index ranges over 0..labels.len() or enumerates vecs sized to it
pub fn semantic_masks(
    labels: &[Option<usize>],
    rng: &mut impl Rng,
) -> Option<(TensorData, TensorData)> {
    let n = labels.len();
    let mut pos_choices: Vec<Option<usize>> = vec![None; n];
    let mut neg_pools: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut cap = usize::MAX;
    let mut any = false;

    for (i, li) in labels.iter().enumerate() {
        let Some(c) = li else { continue };
        let positives: Vec<usize> = (0..n)
            // cmr-lint: allow(panic-path) j ranges over 0..n == labels.len()
            .filter(|&j| j != i && labels[j] == Some(*c))
            .collect();
        let negatives: Vec<usize> = (0..n)
            // cmr-lint: allow(panic-path) j ranges over 0..n == labels.len()
            .filter(|&j| matches!(labels[j], Some(cj) if cj != *c))
            .collect();
        if positives.is_empty() || negatives.is_empty() {
            continue;
        }
        // cmr-lint: allow(panic-path) i enumerates labels, and both per-row vecs were sized to labels.len()
        pos_choices[i] = positives.choose(rng).copied();
        cap = cap.min(negatives.len());
        neg_pools[i] = negatives;
        any = true;
    }
    if !any {
        return None;
    }

    let mut pos_sel = TensorData::zeros(n, n);
    let mut neg_mask = TensorData::zeros(n, n);
    for i in 0..n {
        let Some(p) = pos_choices[i] else { continue };
        pos_sel.set(i, p, 1.0);
        neg_pools[i].shuffle(rng);
        for &j in neg_pools[i].iter().take(cap) {
            neg_mask.set(i, j, 1.0);
        }
    }
    Some((pos_sel, neg_mask))
}

/// Semantic triplet hinge (Eq. 3) for queries = rows of `dist`, using the
/// masks from [`semantic_masks`]:
/// `ℓ_sem(q) = [d(q, pos_q) + α − d(q, j)]₊` over the capped negatives `j`.
pub fn semantic_hinge(
    g: &mut Graph,
    dist: NodeId,
    pos_sel: &TensorData,
    neg_mask: &TensorData,
    margin: f32,
) -> TripletTerm {
    let total = neg_mask.data.iter().filter(|&&v| v > 0.0).count();
    let pos_sel = g.leaf(pos_sel.clone(), false);
    let neg_mask_node = g.leaf(neg_mask.clone(), false);
    let picked = g.mul(dist, pos_sel);
    let dpos = g.row_sum(picked); // (n,1): d(q, pos_q), 0 for non-participants
    let neg = g.scale(dist, -1.0);
    let shifted = g.add_scalar(neg, margin);
    let pre = g.add_col_broadcast(shifted, dpos);
    let hinge = g.relu(pre);
    let masked = g.mul(hinge, neg_mask_node);
    let active = g.value(masked).data.iter().filter(|&&v| v > 0.0).count();
    let sum = g.sum_all(masked);
    TripletTerm { sum: Some(sum), active, total }
}

/// Combines the two directions of one loss (image→recipe and recipe→image:
/// "each item in the 100 pairs is iteratively seen as the query") under the
/// chosen aggregation strategy.
///
/// * [`Strategy::Adaptive`] divides by β′ = the number of active triplets
///   (Eq. 4–5) — the AdaMine update. If nothing is active the gradient is
///   legitimately zero and `None` is returned.
/// * [`Strategy::Average`] divides by the total triplet count — the
///   vanishing-gradient-prone common practice (`AdaMine_avg`).
pub fn combine_directions(
    g: &mut Graph,
    a: TripletTerm,
    b: TripletTerm,
    strategy: Strategy,
) -> Option<NodeId> {
    let denom = match strategy {
        Strategy::Adaptive => a.active + b.active,
        Strategy::Average => a.total + b.total,
    };
    if denom == 0 {
        return None;
    }
    let sum = match (a.sum, b.sum) {
        (Some(x), Some(y)) => g.add(x, y),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => return None,
    };
    Some(g.scale(sum, 1.0 / denom as f32))
}

/// The pairwise contrastive loss of PWC\*/PWC++ (Eq. 6):
/// `y·[d − α_pos]₊ + (1−y)·[α_neg − d]₊` with `y = 1` on the diagonal
/// (matching pairs). Positive and negative terms are averaged separately so
/// the `n` positives are not drowned by the `n(n−1)` negatives.
///
/// # Panics
/// Panics if `dist` is not square.
pub fn pairwise_loss(
    g: &mut Graph,
    dist: NodeId,
    pos_margin: f32,
    neg_margin: f32,
) -> NodeId {
    let n = g.value(dist).rows;
    // cmr-lint: allow(panic-path) documented precondition: the caller built dist as a square batch matrix
    assert_eq!(g.value(dist).cols, n, "pairwise_loss: distance matrix must be square");
    // positive pairs: diagonal
    let dpos = g.diag_to_col(dist);
    let pos_pre = g.add_scalar(dpos, -pos_margin);
    let pos_h = g.relu(pos_pre);
    let pos_term = g.mean_all(pos_h);
    // negative pairs: off-diagonal
    let neg = g.scale(dist, -1.0);
    let neg_pre = g.add_scalar(neg, neg_margin);
    let neg_h = g.relu(neg_pre);
    let mut mask = TensorData::full(n, n, 1.0);
    for i in 0..n {
        mask.set(i, i, 0.0);
    }
    let mask = g.leaf(mask, false);
    let masked = g.mul(neg_h, mask);
    let nsum = g.sum_all(masked);
    let neg_term = g.scale(nsum, 1.0 / (n * (n - 1)) as f32);
    g.add(pos_term, neg_term)
}

/// Classification targets from pair labels (`-1` = unlabeled, ignored by
/// the cross-entropy op).
pub fn cls_targets(labels: &[Option<usize>]) -> Vec<i64> {
    labels.iter().map(|l| l.map_or(-1, |c| c as i64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_tensor::grad_check;
    use rand::SeedableRng;

    fn dist_leaf(g: &mut Graph, rows: &[&[f32]]) -> NodeId {
        g.leaf(TensorData::from_rows(rows), false)
    }

    /// Hand-computed 2×2 instance hinge:
    /// D = [[0.1, 0.9], [0.5, 0.2]], α = 0.3.
    /// q0: [0.1 + 0.3 − 0.9]₊ = 0; q1: [0.2 + 0.3 − 0.5]₊ = 0 (boundary).
    /// With D[1][0] = 0.4: q1 term = 0.1.
    #[test]
    fn instance_hinge_hand_case() {
        let mut g = Graph::new();
        let d = dist_leaf(&mut g, &[&[0.1, 0.9], &[0.4, 0.2]]);
        let t = instance_hinge(&mut g, d, 0.3);
        assert_eq!(t.total, 2);
        assert_eq!(t.active, 1);
        let v = g.value(t.sum.unwrap()).scalar();
        assert!((v - 0.1).abs() < 1e-6, "sum {v}");
    }

    #[test]
    fn satisfied_margins_produce_no_active_triplets() {
        let mut g = Graph::new();
        // matches at distance 0, non-matches at 1.0 ≫ margin
        let d = dist_leaf(&mut g, &[&[0.0, 1.0], &[1.0, 0.0]]);
        let t = instance_hinge(&mut g, d, 0.3);
        assert_eq!(t.active, 0);
        assert_eq!(g.value(t.sum.unwrap()).scalar(), 0.0);
        // adaptive: no denominator → None (zero update, not NaN)
        let t2 = instance_hinge(&mut g, d, 0.3);
        assert!(combine_directions(&mut g, t, t2, Strategy::Adaptive).is_none());
    }

    #[test]
    fn adaptive_and_average_differ_by_active_count() {
        let mut g = Graph::new();
        let d = dist_leaf(&mut g, &[&[0.1, 0.9, 0.15], &[0.4, 0.2, 0.9], &[0.9, 0.9, 0.1]]);
        let a = instance_hinge(&mut g, d, 0.3);
        let b = instance_hinge(&mut g, d, 0.3);
        let (active, total) = (a.active + b.active, a.total + b.total);
        assert!(active > 0 && active < total);
        let la = combine_directions(&mut g, a, b, Strategy::Adaptive).unwrap();
        let mut g2 = Graph::new();
        let d2 = dist_leaf(&mut g2, &[&[0.1, 0.9, 0.15], &[0.4, 0.2, 0.9], &[0.9, 0.9, 0.1]]);
        let a2 = instance_hinge(&mut g2, d2, 0.3);
        let b2 = instance_hinge(&mut g2, d2, 0.3);
        let lb = combine_directions(&mut g2, a2, b2, Strategy::Average).unwrap();
        let ratio = g.value(la).scalar() / g2.value(lb).scalar();
        assert!(
            (ratio - total as f32 / active as f32).abs() < 1e-5,
            "adaptive/average ratio should be total/active, got {ratio}"
        );
    }

    #[test]
    fn semantic_masks_respect_protocol() {
        let labels = vec![
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            None,
            Some(2), // has no same-class partner → cannot participate
        ];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let (pos, neg) = semantic_masks(&labels, &mut rng).unwrap();
        for i in 0..labels.len() {
            let pos_row: Vec<usize> =
                (0..labels.len()).filter(|&j| pos.get(i, j) > 0.0).collect();
            let neg_row: Vec<usize> =
                (0..labels.len()).filter(|&j| neg.get(i, j) > 0.0).collect();
            match i {
                0 => assert_eq!(pos_row, vec![1], "only same-class non-match"),
                1 => assert_eq!(pos_row, vec![0]),
                2 => assert_eq!(pos_row, vec![3]),
                3 => assert_eq!(pos_row, vec![2]),
                _ => assert!(pos_row.is_empty(), "query {i} must not participate"),
            }
            if !pos_row.is_empty() {
                assert!(!neg_row.contains(&4), "unlabeled item used as negative");
                assert!(!neg_row.contains(&i), "self as negative");
                assert!(
                    neg_row.iter().all(|&j| labels[j].is_some() && labels[j] != labels[i]),
                    "negatives must be labeled and different-class"
                );
            } else {
                assert!(neg_row.is_empty());
            }
        }
        // capping: every participating query has the same negative count
        let counts: Vec<usize> = (0..4)
            .map(|i| (0..labels.len()).filter(|&j| neg.get(i, j) > 0.0).count())
            .collect();
        assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    }

    #[test]
    fn semantic_masks_none_without_labels() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        assert!(semantic_masks(&[None, None, None], &mut rng).is_none());
        // one labeled item alone can't form a triplet either
        assert!(semantic_masks(&[Some(1), None], &mut rng).is_none());
    }

    /// Hand-computed semantic hinge: 3 items, labels [0, 0, 1].
    /// Query 0: pos=1, neg={2}: [d(0,1) + α − d(0,2)]₊.
    #[test]
    fn semantic_hinge_hand_case() {
        let labels = vec![Some(0), Some(0), Some(1)];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let (pos, neg) = semantic_masks(&labels, &mut rng).unwrap();
        let mut g = Graph::new();
        let d = dist_leaf(&mut g, &[&[0.0, 0.4, 0.5], &[0.4, 0.0, 0.6], &[0.5, 0.6, 0.0]]);
        let t = semantic_hinge(&mut g, d, &pos, &neg, 0.3);
        // q0: [0.4+0.3−0.5]₊ = 0.2 ; q1: [0.4+0.3−0.6]₊ = 0.1
        // q2: pos is 0 or 1? labels[2]=1 has no partner → skipped.
        assert_eq!(t.total, 2);
        assert_eq!(t.active, 2);
        let v = g.value(t.sum.unwrap()).scalar();
        assert!((v - 0.3).abs() < 1e-6, "sum {v}");
    }

    /// Hand-computed pairwise loss (Eq. 6) on a 2×2 matrix.
    #[test]
    fn pairwise_hand_case() {
        let mut g = Graph::new();
        let d = dist_leaf(&mut g, &[&[0.5, 0.8], &[0.95, 0.1]]);
        // pos: [0.5−0.3]₊=0.2, [0.1−0.3]₊=0 → mean 0.1
        // neg: [0.9−0.8]₊=0.1, [0.9−0.95]₊=0 → mean 0.05
        let loss = pairwise_loss(&mut g, d, 0.3, 0.9);
        let v = g.value(loss).scalar();
        assert!((v - 0.15).abs() < 1e-6, "loss {v}");
    }

    #[test]
    fn pwc_star_is_pairwise_with_zero_pos_margin() {
        let mut g = Graph::new();
        let d = dist_leaf(&mut g, &[&[0.5, 0.8], &[0.95, 0.1]]);
        let loss = pairwise_loss(&mut g, d, 0.0, 0.9);
        // pos mean = 0.3, neg mean = 0.05
        assert!((g.value(loss).scalar() - 0.35).abs() < 1e-6);
    }

    #[test]
    fn cls_targets_encode_unlabeled() {
        assert_eq!(cls_targets(&[Some(3), None, Some(0)]), vec![3, -1, 0]);
    }

    /// End-to-end gradient check: embeddings → distance matrix → adaptive
    /// bidirectional instance loss.
    #[test]
    fn full_instance_loss_grad_check() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let img = cmr_tensor::init::normal(&mut rng, 4, 6, 1.0);
        let rec = cmr_tensor::init::normal(&mut rng, 4, 6, 1.0);
        let rep = grad_check(&img, 1e-3, |g, p| {
            let r = g.leaf(rec.clone(), false);
            let d_ir = cosine_distance_matrix(g, p, r);
            let d_ri = cosine_distance_matrix(g, r, p);
            let a = instance_hinge(g, d_ir, 0.3);
            let b = instance_hinge(g, d_ri, 0.3);
            // NOTE: β′ changes discretely under perturbation; use Average
            // here so the checked function is differentiable.
            combine_directions(g, a, b, Strategy::Average).expect("loss")
        });
        assert!(rep.passes(1e-2), "{rep:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::Strategy as Agg;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn random_dist(n: usize, seed: u64) -> TensorData {
        use rand::Rng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        // cosine distances live in [0, 2]
        TensorData::new(n, n, (0..n * n).map(|_| rng.gen_range(0.0..2.0)).collect())
    }

    proptest! {
        /// The hinge sum is zero exactly when no triplet is active, and the
        /// active count never exceeds the total.
        #[test]
        fn instance_hinge_consistency(seed in 0u64..300, n in 2usize..8) {
            let d = random_dist(n, seed);
            let mut g = Graph::new();
            let d = g.leaf(d, false);
            let t = instance_hinge(&mut g, d, 0.3);
            prop_assert!(t.active <= t.total);
            prop_assert_eq!(t.total, n * (n - 1));
            let sum = g.value(t.sum.unwrap()).scalar();
            prop_assert!(sum >= 0.0);
            prop_assert_eq!(t.active == 0, sum == 0.0);
        }

        /// Adaptive loss value ≥ average loss value (β′ ≤ total), and both
        /// agree when every triplet is active.
        #[test]
        fn adaptive_dominates_average(seed in 0u64..300, n in 2usize..8) {
            let build = |strategy: Agg, seed: u64| -> Option<f32> {
                let mut g = Graph::new();
                let d = g.leaf(random_dist(n, seed), false);
                let a = instance_hinge(&mut g, d, 0.3);
                let b = instance_hinge(&mut g, d, 0.3);
                combine_directions(&mut g, a, b, strategy).map(|l| g.value(l).scalar())
            };
            let ada = build(Agg::Adaptive, seed);
            let avg = build(Agg::Average, seed).expect("average always defined");
            if let Some(ada) = ada {
                prop_assert!(ada >= avg - 1e-6, "adaptive {ada} < average {avg}");
            } else {
                prop_assert_eq!(avg, 0.0);
            }
        }

        /// Semantic masks never select the query itself, never select
        /// unlabeled items, and positives always share the query class.
        #[test]
        fn semantic_mask_invariants(seed in 0u64..300, n in 3usize..12) {
            use rand::Rng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let labels: Vec<Option<usize>> = (0..n)
                .map(|_| if rng.gen_bool(0.5) { Some(rng.gen_range(0..3usize)) } else { None })
                .collect();
            if let Some((pos, neg)) = semantic_masks(&labels, &mut rng) {
                for i in 0..n {
                    prop_assert_eq!(pos.get(i, i), 0.0, "self as positive");
                    prop_assert_eq!(neg.get(i, i), 0.0, "self as negative");
                    let pos_cols: Vec<usize> =
                        (0..n).filter(|&j| pos.get(i, j) > 0.0).collect();
                    prop_assert!(pos_cols.len() <= 1, "more than one positive");
                    for &j in &pos_cols {
                        prop_assert!(labels[i].is_some());
                        prop_assert_eq!(labels[j], labels[i]);
                    }
                    for j in 0..n {
                        if neg.get(i, j) > 0.0 {
                            prop_assert!(labels[j].is_some(), "unlabeled negative");
                            prop_assert!(labels[j] != labels[i], "same-class negative");
                        }
                    }
                    // a row participates fully or not at all
                    let has_neg = (0..n).any(|j| neg.get(i, j) > 0.0);
                    prop_assert_eq!(!pos_cols.is_empty(), has_neg);
                }
            }
        }

        /// Pairwise loss is non-negative and zero on a perfectly separated
        /// distance matrix.
        #[test]
        fn pairwise_loss_bounds(seed in 0u64..200, n in 2usize..8) {
            let mut g = Graph::new();
            let d = g.leaf(random_dist(n, seed), false);
            let loss = pairwise_loss(&mut g, d, 0.3, 0.9);
            prop_assert!(g.value(loss).scalar() >= 0.0);

            // perfect matrix: diagonal 0, off-diagonal 2
            let mut perfect = TensorData::full(n, n, 2.0);
            for i in 0..n {
                perfect.set(i, i, 0.0);
            }
            let mut g = Graph::new();
            let d = g.leaf(perfect, false);
            let loss = pairwise_loss(&mut g, d, 0.3, 0.9);
            prop_assert_eq!(g.value(loss).scalar(), 0.0);
        }
    }
}
