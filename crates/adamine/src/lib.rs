//! # cmr-adamine
//!
//! The paper's contribution: **AdaMine** (ADAptive MINing Embedding), a
//! double-triplet cross-modal metric-learning framework with adaptive
//! informative-triplet mining (§3).
//!
//! * [`model`] — the two-branch network (§3.2.1): an image branch (frozen
//!   CNN features → trainable adapter → projection) and a recipe branch
//!   (bi-LSTM over word2vec ingredient embeddings ∥ sentence-level LSTM over
//!   frozen sentence features → projection), meeting in a shared latent
//!   space compared by cosine distance.
//! * [`losses`] — the instance triplet loss `L_ins` (Eq. 2), the semantic
//!   triplet loss `L_sem` (Eq. 3), the adaptive update normalisation
//!   `δ_adm` (Eq. 4–5) against the plain averaging strategy, plus the
//!   pairwise PWC/PWC++ baselines (Eq. 6) and the classification head of
//!   Salvador et al. used by `AdaMine_ins+cls`.
//! * [`scenario`] — every named model variant from Tables 1 and 3.
//! * [`trainer`] — the §4.4 training loop: Adam, two-phase freeze schedule,
//!   100-pair batches (50 unlabeled + 50 labeled), model selection by
//!   validation MedR.
//!
//! ## Quick start
//!
//! ```no_run
//! use cmr_adamine::{Scenario, TrainConfig, Trainer};
//! use cmr_data::{DataConfig, Dataset, Scale};
//!
//! let dataset = Dataset::generate(&DataConfig::for_scale(Scale::Tiny));
//! let cfg = TrainConfig::for_scale_tiny();
//! let trained = Trainer::new(Scenario::AdaMine, cfg).run(&dataset);
//! let (imgs, recs) = trained.embed_split(&dataset, cmr_data::Split::Test);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod losses;
pub mod model;
pub mod precompute;
pub mod scenario;
pub mod trainer;

pub use config::{ConfigError, LossKind, ModelConfig, Strategy, TextMode, TrainConfig};
pub use model::{BatchInputs, TwoBranchModel};
pub use precompute::{RecipeFeatures, SentenceFeaturizer};
pub use scenario::Scenario;
pub use trainer::{EpochStats, FaultPlan, TrainError, TrainedModel, Trainer};
