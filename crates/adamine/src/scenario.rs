//! The named model variants of Tables 1 and 3.

use crate::config::{LossKind, ModelConfig, Strategy, TextMode, TrainConfig};

/// Every trainable scenario evaluated in the paper (§4.3).
///
/// `CCA` and `Random` are handled outside this enum (closed-form / no
/// model); everything here goes through the same [`Trainer`](crate::Trainer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Full model: instance + semantic triplet losses, adaptive mining.
    AdaMine,
    /// Instance (retrieval) triplet loss only.
    AdaMineIns,
    /// Semantic triplet loss only.
    AdaMineSem,
    /// Instance triplet loss + classification head (the Salvador et al. way
    /// of injecting class information).
    AdaMineInsCls,
    /// Full losses but plain gradient averaging instead of adaptive mining.
    AdaMineAvg,
    /// Full model reading only the ingredient list.
    AdaMineIngr,
    /// Full model reading only the instructions.
    AdaMineInstr,
    /// Extension (the paper's stated future work, §6): a second semantic
    /// triplet level over class *super-groups* with a doubled margin,
    /// enforcing a coarse-to-fine hierarchy in the latent space.
    AdaMineHier,
    /// Our reimplementation of Salvador et al.'s pairwise loss +
    /// classification head (PWC\*).
    PwcStar,
    /// PWC\* with the positive margin of Hu et al. (PWC++).
    PwcPlusPlus,
}

impl Scenario {
    /// All scenarios, in Table-3 presentation order.
    pub const ALL: [Scenario; 9] = [
        Scenario::PwcStar,
        Scenario::PwcPlusPlus,
        Scenario::AdaMineSem,
        Scenario::AdaMineIns,
        Scenario::AdaMineInsCls,
        Scenario::AdaMineAvg,
        Scenario::AdaMineIngr,
        Scenario::AdaMineInstr,
        Scenario::AdaMine,
    ];

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::AdaMine => "AdaMine",
            Scenario::AdaMineIns => "AdaMine_ins",
            Scenario::AdaMineSem => "AdaMine_sem",
            Scenario::AdaMineInsCls => "AdaMine_ins+cls",
            Scenario::AdaMineAvg => "AdaMine_avg",
            Scenario::AdaMineIngr => "AdaMine_ingr",
            Scenario::AdaMineInstr => "AdaMine_instr",
            Scenario::AdaMineHier => "AdaMine_hier",
            Scenario::PwcStar => "PWC*",
            Scenario::PwcPlusPlus => "PWC++",
        }
    }

    /// Applies this scenario's loss/strategy settings to a base training
    /// configuration (margins, λ, epochs etc. are preserved).
    pub fn apply_to(self, mut cfg: TrainConfig) -> TrainConfig {
        cfg.strategy = match self {
            Scenario::AdaMineAvg => Strategy::Average,
            _ => Strategy::Adaptive,
        };
        cfg.loss = match self {
            Scenario::AdaMine | Scenario::AdaMineAvg | Scenario::AdaMineIngr
            | Scenario::AdaMineInstr | Scenario::AdaMineHier => {
                LossKind::Triplet { semantic: true, classification: false }
            }
            Scenario::AdaMineIns => LossKind::Triplet { semantic: false, classification: false },
            Scenario::AdaMineSem => LossKind::Triplet { semantic: true, classification: false },
            Scenario::AdaMineInsCls => {
                LossKind::Triplet { semantic: false, classification: true }
            }
            Scenario::PwcStar => LossKind::Pairwise { pos_margin: 0.0, neg_margin: 0.9 },
            Scenario::PwcPlusPlus => LossKind::Pairwise { pos_margin: 0.3, neg_margin: 0.9 },
        };
        cfg
    }

    /// `true` when the instance loss is disabled (the `AdaMine_sem`
    /// ablation keeps only `L_sem`).
    pub fn semantic_only(self) -> bool {
        self == Scenario::AdaMineSem
    }

    /// `true` when the super-group semantic level is enabled.
    pub fn hierarchical(self) -> bool {
        self == Scenario::AdaMineHier
    }

    /// Applies this scenario's architecture settings (text mode, optional
    /// classification head) to a base model configuration.
    pub fn apply_to_model(self, mut cfg: ModelConfig, n_classes: usize) -> ModelConfig {
        cfg.text_mode = match self {
            Scenario::AdaMineIngr => TextMode::IngredientsOnly,
            Scenario::AdaMineInstr => TextMode::InstructionsOnly,
            _ => TextMode::Full,
        };
        cfg.n_classes = match self {
            Scenario::AdaMineInsCls | Scenario::PwcStar | Scenario::PwcPlusPlus => n_classes,
            _ => 0,
        };
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Scenario::AdaMine.name(), "AdaMine");
        assert_eq!(Scenario::AdaMineInsCls.name(), "AdaMine_ins+cls");
        assert_eq!(Scenario::PwcStar.name(), "PWC*");
    }

    #[test]
    fn avg_scenario_switches_strategy_only() {
        let base = TrainConfig::default();
        let avg = Scenario::AdaMineAvg.apply_to(base.clone());
        let full = Scenario::AdaMine.apply_to(base);
        assert_eq!(avg.strategy, Strategy::Average);
        assert_eq!(full.strategy, Strategy::Adaptive);
        assert_eq!(avg.loss, full.loss, "avg ablation changes only aggregation");
    }

    #[test]
    fn cls_scenarios_get_heads() {
        let m = Scenario::AdaMineInsCls.apply_to_model(ModelConfig::default(), 24);
        assert_eq!(m.n_classes, 24);
        let m = Scenario::AdaMine.apply_to_model(ModelConfig::default(), 24);
        assert_eq!(m.n_classes, 0, "semantic loss needs no head parameters");
    }

    #[test]
    fn text_ablations_change_mode() {
        let m = Scenario::AdaMineIngr.apply_to_model(ModelConfig::default(), 0);
        assert_eq!(m.text_mode, TextMode::IngredientsOnly);
        let m = Scenario::AdaMineInstr.apply_to_model(ModelConfig::default(), 0);
        assert_eq!(m.text_mode, TextMode::InstructionsOnly);
    }
}
