//! Frozen text features, computed once per dataset.
//!
//! Two pieces of the paper's recipe branch are *not* trained end-to-end
//! (§3.2.1): the word2vec embeddings and the skip-thought word level of the
//! instruction encoder. Freezing means their outputs are constants, so we
//! precompute them for the whole dataset once instead of re-running them on
//! every batch — the same optimisation the reference PyTorch implementation
//! makes.

use cmr_data::{Dataset, Recipe};
use cmr_word2vec::WordVectors;
use rand::Rng;

/// The frozen sentence featuriser standing in for pretrained skip-thought
/// vectors: `tanh(P · positional-weighted-mean(word2vec(tokens)))` with a
/// fixed random projection `P`.
///
/// Position weighting (`1/(1+t)`) keeps the feature sensitive to token
/// order, which a plain mean would destroy — mirroring that skip-thought
/// encodes order too.
pub struct SentenceFeaturizer {
    proj: Vec<f32>,
    in_dim: usize,
    /// Output dimensionality.
    pub out_dim: usize,
}

impl SentenceFeaturizer {
    /// Samples the fixed projection.
    pub fn new(rng: &mut impl Rng, word_dim: usize, out_dim: usize) -> Self {
        let std = (1.0 / word_dim as f64).sqrt() as f32;
        let proj = (0..word_dim * out_dim)
            .map(|_| {
                // Box–Muller
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32 * std
            })
            .collect();
        Self { proj, in_dim: word_dim, out_dim }
    }

    /// Features for one sentence of token ids. Empty sentences map to the
    /// zero vector.
    ///
    /// # Panics
    /// Panics if the word-vector dimensionality differs from `word_dim`.
    pub fn featurize(&self, sentence: &[usize], wv: &WordVectors) -> Vec<f32> {
        // cmr-lint: allow(panic-path) documented precondition: featurizer and word vectors must agree on dim
        assert_eq!(wv.dim, self.in_dim, "SentenceFeaturizer: word dim mismatch");
        let mut mean = vec![0.0f32; self.in_dim];
        let mut wsum = 0.0f32;
        for (t, &tok) in sentence.iter().enumerate() {
            let w = 1.0 / (1.0 + t as f32);
            wsum += w;
            for (m, &v) in mean.iter_mut().zip(wv.vector(tok)) {
                *m += w * v;
            }
        }
        if wsum > 0.0 {
            for m in &mut mean {
                *m /= wsum;
            }
        }
        let mut out = vec![0.0f32; self.out_dim];
        for (i, &mi) in mean.iter().enumerate() {
            if mi == 0.0 {
                continue;
            }
            // cmr-lint: allow(panic-path) proj is allocated as in_dim rows of out_dim and i enumerates mean (len in_dim)
            let row = &self.proj[i * self.out_dim..(i + 1) * self.out_dim];
            for (o, &p) in out.iter_mut().zip(row) {
                *o += mi * p;
            }
        }
        for o in &mut out {
            *o = o.tanh();
        }
        out
    }
}

/// Per-recipe frozen features for the whole dataset: capped ingredient
/// token lists and per-sentence features.
pub struct RecipeFeatures {
    /// Ingredient token ids, capped at `max_ingredients`, one list per
    /// recipe (dataset order).
    pub ingr_tokens: Vec<Vec<usize>>,
    /// Frozen sentence features, capped at `max_sentences`.
    pub sent_feats: Vec<Vec<Vec<f32>>>,
    /// Sentence feature dimensionality.
    pub sent_dim: usize,
}

impl RecipeFeatures {
    /// Precomputes features for every recipe in the dataset.
    pub fn build(
        dataset: &Dataset,
        wv: &WordVectors,
        featurizer: &SentenceFeaturizer,
        max_ingredients: usize,
        max_sentences: usize,
    ) -> Self {
        let mut ingr_tokens = Vec::with_capacity(dataset.len());
        let mut sent_feats = Vec::with_capacity(dataset.len());
        for r in &dataset.recipes {
            ingr_tokens.push(Self::cap_ingredients(r, max_ingredients));
            sent_feats.push(Self::featurize_recipe(r, wv, featurizer, max_sentences));
        }
        Self { ingr_tokens, sent_feats, sent_dim: featurizer.out_dim }
    }

    /// The capped ingredient token list of a single (possibly modified)
    /// recipe — used to featurise out-of-dataset queries (Tables 4–5).
    pub fn cap_ingredients(recipe: &Recipe, max_ingredients: usize) -> Vec<usize> {
        let mut toks = recipe.ingredient_tokens.clone();
        toks.truncate(max_ingredients.max(1));
        if toks.is_empty() {
            toks.push(cmr_word2vec::vocab::PAD);
        }
        toks
    }

    /// Frozen sentence features of a single recipe.
    pub fn featurize_recipe(
        recipe: &Recipe,
        wv: &WordVectors,
        featurizer: &SentenceFeaturizer,
        max_sentences: usize,
    ) -> Vec<Vec<f32>> {
        let mut feats: Vec<Vec<f32>> = recipe
            .instructions
            .iter()
            .take(max_sentences.max(1))
            .map(|s| featurizer.featurize(s, wv))
            .collect();
        if feats.is_empty() {
            feats.push(vec![0.0; featurizer.out_dim]);
        }
        feats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmr_data::{DataConfig, Scale};
    use cmr_word2vec::SgnsConfig;
    use rand::SeedableRng;

    fn setup() -> (Dataset, WordVectors, SentenceFeaturizer) {
        let d = Dataset::generate(&DataConfig::for_scale(Scale::Tiny));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let wv = cmr_word2vec::train(
            &d.word2vec_corpus(),
            d.world.vocab.len(),
            &SgnsConfig { dim: 16, epochs: 1, ..Default::default() },
            &mut rng,
        );
        let f = SentenceFeaturizer::new(&mut rng, 16, 16);
        (d, wv, f)
    }

    #[test]
    fn featurizer_is_order_sensitive_and_bounded() {
        let (_, wv, f) = setup();
        let a = f.featurize(&[1, 2, 3], &wv);
        let b = f.featurize(&[3, 2, 1], &wv);
        assert_ne!(a, b, "positional weighting must distinguish order");
        assert!(a.iter().all(|v| v.abs() <= 1.0), "tanh bounds outputs");
        assert_eq!(f.featurize(&[], &wv), vec![0.0; 16]);
    }

    #[test]
    fn build_covers_dataset_with_caps() {
        let (d, wv, f) = setup();
        let feats = RecipeFeatures::build(&d, &wv, &f, 4, 3);
        assert_eq!(feats.ingr_tokens.len(), d.len());
        assert!(feats.ingr_tokens.iter().all(|t| !t.is_empty() && t.len() <= 4));
        assert!(feats.sent_feats.iter().all(|s| !s.is_empty() && s.len() <= 3));
        assert_eq!(feats.sent_dim, 16);
    }

    #[test]
    fn deterministic_featurization() {
        let (d, wv, _) = setup();
        let mut r1 = rand::rngs::SmallRng::seed_from_u64(9);
        let mut r2 = rand::rngs::SmallRng::seed_from_u64(9);
        let f1 = SentenceFeaturizer::new(&mut r1, 16, 8);
        let f2 = SentenceFeaturizer::new(&mut r2, 16, 8);
        let s = &d.recipes[0].instructions[0];
        assert_eq!(f1.featurize(s, &wv), f2.featurize(s, &wv));
    }
}
