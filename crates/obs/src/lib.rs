//! First-party, zero-dependency observability for the workspace.
//!
//! Three primitives feed one process-global registry:
//!
//! * [`counter_add`] — monotonic `u64` counters (saturating on overflow),
//! * [`gauge_set`] — last-write-wins point-in-time levels (e.g. a shard's
//!   circuit-breaker state),
//! * [`observe`] / [`span`] — fixed-bucket value/latency histograms with a
//!   1–2–5 log ladder of bucket edges (see [`BUCKET_EDGES`]),
//! * [`series_push`] — ordered rows of named `f64` fields (e.g. one row per
//!   training epoch).
//!
//! Two sinks read the registry back out:
//!
//! * [`summary_line`] — a one-line human-readable health snapshot,
//! * [`Snapshot::render_json`] / [`write_artifact`] — a deterministic,
//!   sorted, `schema_version`-stamped JSON artifact in the style of
//!   `CALLGRAPH.json` (byte-identical across runs with identical inputs).
//!
//! Everything is gated behind the `CMR_OBS` environment knob (off by
//! default). When the knob is off every recording call is a single relaxed
//! atomic load and an early return, so instrumented hot paths pay near-zero
//! overhead. Programs that want telemetry unconditionally (e.g. the
//! `exp_obs` bench bin) call [`set_enabled`] instead of setting the env var.
//!
//! The only `std::env::var` read lives in this file and is registered with
//! the `env-centralization` lint rule.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hist;
mod registry;
mod span;

pub use hist::{HistogramSnapshot, BUCKET_EDGES};
pub use registry::{
    counter_add, gauge_set, observe, reset, series_push, snapshot, summary_line, write_artifact,
    Snapshot,
};
pub use span::{span, time_block, Span, TimeBlock};

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state knob: 0 = unresolved (read `CMR_OBS` on first use),
/// 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

const OFF: u8 = 1;
const ON: u8 = 2;

/// Reads the `CMR_OBS` env knob. `1`, `true` and `on` (trimmed,
/// case-insensitive) enable telemetry; anything else (including unset)
/// disables it.
fn resolve_env() -> u8 {
    let on = std::env::var("CMR_OBS")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "true" || v == "on"
        })
        .unwrap_or(false);
    if on {
        return ON;
    }
    OFF
}

/// Returns whether telemetry recording is enabled.
///
/// The first call resolves the `CMR_OBS` environment knob and caches the
/// result; subsequent calls are a single relaxed atomic load. A racing
/// first-use from two threads resolves to the same value (the env read is
/// pure), so first-writer-wins is safe.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let resolved = resolve_env();
            match STATE.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => resolved == ON,
                Err(current) => current == ON,
            }
        }
        current => current == ON,
    }
}

/// Overrides the `CMR_OBS` knob for this process (tests and bins that want
/// telemetry regardless of the environment).
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Writes one progress line to stderr when telemetry is enabled; a no-op
/// otherwise. Library crates route their former `eprintln!` progress sites
/// through here so logs respect the `CMR_OBS` off switch and never
/// interleave with artifact stdout by default.
pub fn log(line: &str) {
    if !enabled() {
        return;
    }
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry and the enable knob are process-global, so tests that
    /// touch them serialize on this lock (cargo runs tests on threads).
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn set_enabled_overrides_and_disables() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(false);
        counter_add("noop.counter", 7);
        gauge_set("noop.gauge", 1.0);
        observe("noop.hist", 0.5);
        series_push("noop.series", &[("x", 1.0)]);
        {
            let _span = span("noop.span");
        }
        set_enabled(true);
        let snap = snapshot("");
        set_enabled(false);
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.series.is_empty());
    }
}
