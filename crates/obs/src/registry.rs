//! The process-global metric registry and its two sinks.
//!
//! All recording goes through free functions that early-return when the
//! `CMR_OBS` knob is off, so the disabled cost is one relaxed atomic load.
//! Reading back is done through [`snapshot`], which filters by a name
//! prefix so one process can split its telemetry into several artifacts
//! (e.g. `train.*` vs `retrieval.*`).

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

/// Artifact schema version; bump on any change to the JSON layout.
/// v2 added the `p999` quantile to every histogram block; v3 added the
/// `gauges` block (last-write-wins point-in-time values, e.g. per-shard
/// circuit-breaker state).
const SCHEMA_VERSION: u32 = 3;

struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<Vec<(String, f64)>>>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
    series: BTreeMap::new(),
});

/// A poisoned registry lock only means another thread panicked mid-record;
/// the maps themselves are always structurally valid, so recover the guard.
fn lock() -> MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Adds `delta` to the named monotonic counter (saturating at `u64::MAX`).
/// No-op while telemetry is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    let mut r = lock();
    let c = r.counters.entry(name.to_string()).or_insert(0);
    *c = c.saturating_add(delta);
}

/// Sets the named gauge to `value` (last write wins). Gauges are
/// point-in-time levels — a circuit-breaker state, a shard health bit —
/// where only the current value matters, unlike monotonic counters.
/// No-op while telemetry is disabled or when `value` is non-finite.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() || !value.is_finite() {
        return;
    }
    let mut r = lock();
    r.gauges.insert(name.to_string(), value);
}

/// Records one value into the named histogram. No-op while telemetry is
/// disabled or when `value` is non-finite.
pub fn observe(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut r = lock();
    r.hists.entry(name.to_string()).or_insert_with(Histogram::new).observe(value);
}

/// Appends one row of named `f64` fields to the named series (e.g. one row
/// per training epoch). No-op while telemetry is disabled.
pub fn series_push(name: &str, fields: &[(&str, f64)]) {
    if !crate::enabled() {
        return;
    }
    let mut row: Vec<(String, f64)> = fields.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    row.sort_by(|a, b| a.0.cmp(&b.0));
    let mut r = lock();
    r.series.entry(name.to_string()).or_default().push(row);
}

/// Clears every counter, histogram and series (tests and multi-run bins).
pub fn reset() {
    let mut r = lock();
    r.counters.clear();
    r.gauges.clear();
    r.hists.clear();
    r.series.clear();
}

/// One-line human-readable health snapshot of the whole registry.
pub fn summary_line() -> String {
    let r = lock();
    let observations: u64 = r.hists.values().map(Histogram::count).sum();
    let rows: usize = r.series.values().map(Vec::len).sum();
    format!(
        "obs: {} counters, {} gauges, {} histograms ({} observations), {} series ({} rows)",
        r.counters.len(),
        r.gauges.len(),
        r.hists.len(),
        observations,
        r.series.len(),
        rows,
    )
}

/// Immutable, name-sorted view of every metric whose name starts with
/// `prefix` (empty prefix = everything).
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, rows)` pairs, sorted by name; each row's fields are sorted
    /// by field name.
    pub series: Vec<(String, Vec<Vec<(String, f64)>>)>,
}

/// Takes a [`Snapshot`] of the registry, filtered by name prefix. Works
/// regardless of the enable knob (reading back is always allowed).
pub fn snapshot(prefix: &str) -> Snapshot {
    let r = lock();
    Snapshot {
        counters: r
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        histograms: r
            .hists
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect(),
        series: r
            .series
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, rows)| (k.clone(), rows.clone()))
            .collect(),
    }
}

impl Snapshot {
    /// True when the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Looks up a series' rows by exact name.
    pub fn series_rows(&self, name: &str) -> Option<&[Vec<(String, f64)>]> {
        self.series.iter().find(|(k, _)| k == name).map(|(_, rows)| rows.as_slice())
    }

    /// Renders the snapshot as a deterministic JSON document: fixed key
    /// order, every map sorted by name, floats in shortest-roundtrip form.
    /// Identical registry contents render to byte-identical documents.
    pub fn render_json(&self, artifact: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"artifact\": \"{}\",", esc(artifact));
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {value}", esc(name));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {}", esc(name), fmt_f64(*value));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {{\n", esc(name));
            let _ = writeln!(out, "      \"count\": {},", h.count);
            let _ = writeln!(out, "      \"sum\": {},", fmt_f64(h.sum));
            let _ = writeln!(out, "      \"min\": {},", fmt_f64(h.min));
            let _ = writeln!(out, "      \"max\": {},", fmt_f64(h.max));
            let _ = writeln!(out, "      \"p50\": {},", fmt_f64(h.p50));
            let _ = writeln!(out, "      \"p90\": {},", fmt_f64(h.p90));
            let _ = writeln!(out, "      \"p99\": {},", fmt_f64(h.p99));
            let _ = writeln!(out, "      \"p999\": {},", fmt_f64(h.p999));
            out.push_str("      \"buckets\": [");
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[\"{}\", {n}]", esc(le));
            }
            out.push_str("]\n    }");
        }
        out.push_str(if self.histograms.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"series\": {");
        for (i, (name, rows)) in self.series.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": [", esc(name));
            for (j, row) in rows.iter().enumerate() {
                let sep = if j == 0 { "\n" } else { ",\n" };
                let _ = write!(out, "{sep}      {{");
                for (k, (field, value)) in row.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": {}", esc(field), fmt_f64(*value));
                }
                out.push('}');
            }
            out.push_str(if rows.is_empty() { "]" } else { "\n    ]" });
        }
        out.push_str(if self.series.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Writes the rendered artifact durably: temp file in the target
    /// directory, then atomic rename over `path`.
    pub fn save(&self, path: &Path, artifact: &str) -> std::io::Result<()> {
        let rendered = self.render_json(artifact);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, rendered.as_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// Snapshots the registry under `prefix` and writes it to `path` as the
/// named artifact. Convenience wrapper over [`snapshot`] + [`Snapshot::save`].
pub fn write_artifact(path: &Path, artifact: &str, prefix: &str) -> std::io::Result<()> {
    snapshot(prefix).save(path, artifact)
}

/// Shortest-roundtrip float rendering; non-finite values (which valid JSON
/// cannot carry) render as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for metric/field names.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    fn record_fixture() {
        reset();
        crate::set_enabled(true);
        counter_add("t.batches", 40);
        counter_add("t.batches", 2);
        counter_add("t.skipped", 0);
        gauge_set("t.breaker", 2.0);
        gauge_set("t.breaker", 0.0);
        gauge_set("t.coverage", 0.75);
        observe("t.lat", 0.0015);
        observe("t.lat", 0.0017);
        observe("t.lat", 0.9);
        series_push("t.epoch", &[("epoch", 0.0), ("loss", 0.25)]);
        series_push("t.epoch", &[("loss", 0.125), ("epoch", 1.0)]);
        crate::set_enabled(false);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        crate::set_enabled(true);
        counter_add("t.sat", u64::MAX - 1);
        counter_add("t.sat", 5);
        counter_add("t.sat", 5);
        crate::set_enabled(false);
        assert_eq!(snapshot("t.").counter("t.sat"), Some(u64::MAX));
    }

    #[test]
    fn snapshot_filters_by_prefix_and_sorts() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        crate::set_enabled(true);
        counter_add("b.two", 2);
        counter_add("a.one", 1);
        crate::set_enabled(false);
        let all = snapshot("");
        let names: Vec<&str> = all.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two"]);
        let only_a = snapshot("a.");
        assert_eq!(only_a.counter("a.one"), Some(1));
        assert!(only_a.counter("b.two").is_none());
        assert!(snapshot("zz.").is_empty());
    }

    #[test]
    fn json_artifact_is_byte_deterministic_across_runs() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        record_fixture();
        let first = snapshot("t.").render_json("OBS_test");
        record_fixture();
        let second = snapshot("t.").render_json("OBS_test");
        assert_eq!(first, second);
        assert!(first.starts_with("{\n  \"schema_version\": 3,\n"));
        assert!(first.contains("\"artifact\": \"OBS_test\""));
        // Series rows carry field-sorted keys regardless of push order.
        assert!(first.contains("{\"epoch\": 1, \"loss\": 0.125}"));
        // Gauges are last-write-wins.
        assert!(first.contains("\"t.breaker\": 0"));
        assert!(first.contains("\"t.coverage\": 0.75"));
        assert!(first.ends_with("}\n"));
        reset();
    }

    #[test]
    fn empty_snapshot_renders_valid_skeleton() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        let doc = snapshot("").render_json("OBS_empty");
        assert!(doc.contains("\"counters\": {}"));
        assert!(doc.contains("\"gauges\": {}"));
        assert!(doc.contains("\"histograms\": {}"));
        assert!(doc.contains("\"series\": {}"));
    }

    #[test]
    fn artifact_write_is_atomic_and_reproducible() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        record_fixture();
        let dir = std::env::temp_dir().join("cmr_obs_artifact_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("OBS_test.json");
        write_artifact(&path, "OBS_test", "t.").expect("first write");
        let first = std::fs::read_to_string(&path).expect("read first");
        write_artifact(&path, "OBS_test", "t.").expect("second write");
        let second = std::fs::read_to_string(&path).expect("read second");
        assert_eq!(first, second);
        assert!(!path.with_extension("json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
        reset();
    }
}
