//! Fixed-bucket histograms on a 1–2–5 log ladder.
//!
//! Bucket edges are compiled in (no per-histogram configuration), which
//! keeps recording allocation-free and makes every histogram in an
//! artifact directly comparable. The ladder spans 1 µs to 1000 s when
//! values are seconds, and equally serves dimensionless values in
//! `[1e-6, 1e3]`; values above the top edge land in a single overflow
//! bucket and are still captured exactly by `min`/`max`/`sum`.

/// Upper bucket edges (inclusive) of the shared 1–2–5 log ladder.
pub const BUCKET_EDGES: [f64; 28] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
];

/// One bucket per edge plus the overflow bucket.
const NUM_BUCKETS: usize = BUCKET_EDGES.len() + 1;

/// A mutable histogram as stored in the registry.
#[derive(Clone, Debug)]
pub(crate) struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    pub(crate) const fn new() -> Self {
        Histogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value. Non-finite values are dropped (they would poison
    /// `sum` and cannot be bucketed meaningfully).
    pub(crate) fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let bucket = BUCKET_EDGES
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(BUCKET_EDGES.len());
        if let Some(c) = self.counts.iter_mut().nth(bucket) {
            *c = c.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub(crate) fn count(&self) -> u64 {
        self.count
    }

    /// Bucket-resolution quantile estimate: the upper edge of the bucket
    /// holding the `q`-th observation, clamped into `[min, max]` so the
    /// estimate never exceeds an actually observed value. Returns 0.0 for
    /// an empty histogram.
    pub(crate) fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bucket, n) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(*n);
            if cumulative >= target {
                let edge = BUCKET_EDGES.get(bucket).copied().unwrap_or(self.max);
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets: BUCKET_EDGES
                .iter()
                .map(|e| format!("{e}"))
                .chain(std::iter::once("+Inf".to_string()))
                .zip(self.counts.iter().copied())
                .filter(|(_, n)| *n > 0)
                .collect(),
        }
    }
}

/// Read-only view of a histogram, as exported into artifacts.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: f64,
    /// Smallest recorded value (0.0 when empty).
    pub min: f64,
    /// Largest recorded value (0.0 when empty).
    pub max: f64,
    /// Median estimate at bucket resolution.
    pub p50: f64,
    /// 90th-percentile estimate at bucket resolution.
    pub p90: f64,
    /// 99th-percentile estimate at bucket resolution.
    pub p99: f64,
    /// 99.9th-percentile estimate at bucket resolution (the serving tail;
    /// clamped to `max` like every quantile here).
    pub p999: f64,
    /// Non-empty buckets as `(upper_edge_label, count)`, in ladder order;
    /// the final ladder position is the `"+Inf"` overflow bucket.
    pub buckets: Vec<(String, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_documented_buckets() {
        let mut h = Histogram::new();
        // Exactly on an edge -> that bucket (edges are inclusive).
        h.observe(1e-6);
        // Just above an edge -> next bucket.
        h.observe(1.1e-6);
        // Mid-ladder.
        h.observe(0.003);
        // Above the top edge -> overflow bucket.
        h.observe(5000.0);
        // Non-finite -> dropped.
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);

        assert_eq!(h.count, 4);
        let snap = h.snapshot();
        let labels: Vec<&str> = snap.buckets.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["0.000001", "0.000002", "0.005", "+Inf"]);
        assert!(snap.buckets.iter().all(|(_, n)| *n == 1));
        assert_eq!(snap.min, 1e-6);
        assert_eq!(snap.max, 5000.0);
    }

    #[test]
    fn quantiles_track_the_bucket_edges() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(0.0015); // bucket with upper edge 2e-3
        }
        h.observe(0.7); // bucket with upper edge 1.0
        let snap = h.snapshot();
        assert_eq!(snap.p50, 2e-3);
        assert_eq!(snap.p90, 2e-3);
        // The 100th observation is the 0.7 outlier; its bucket edge (1.0)
        // is clamped to the observed max.
        assert_eq!(snap.p99, 2e-3);
        // The 0.7 outlier is the 100th observation: p99.9 lands in its
        // bucket, whose 1.0 upper edge clamps to the observed max.
        assert_eq!(snap.p999, 0.7);
        assert_eq!(h.quantile(1.0), 0.7);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50, 0.0);
        assert_eq!(snap.p99, 0.0);
        assert_eq!(snap.p999, 0.0);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 0.0);
        assert!(snap.buckets.is_empty());
    }
}
