//! RAII timing spans and the bench `time_block` helper.

use std::time::Instant;

/// An RAII timing span: created by [`span`], it records the elapsed wall
/// time into the named histogram when dropped. When telemetry is disabled
/// at creation the span holds no clock and the drop is free.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a timing span feeding the named histogram (seconds). The returned
/// guard records on drop:
///
/// ```
/// {
///     let _span = cmr_obs::span("retrieval.query_latency_s");
///     // … timed work …
/// } // elapsed seconds recorded here
/// ```
pub fn span(name: &'static str) -> Span {
    Span { name, start: if crate::enabled() { Some(Instant::now()) } else { None } }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            crate::observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// Result of a [`time_block`] measurement.
#[derive(Clone, Copy, Debug)]
pub struct TimeBlock {
    /// Median wall time over the measured repetitions, in seconds (the
    /// upper middle value for an even repetition count).
    pub median_s: f64,
    /// Number of measured repetitions (at least 1).
    pub reps: usize,
    /// Number of unmeasured warmup repetitions that preceded them.
    pub warmup: usize,
}

/// Times a closure with `warmup` unmeasured repetitions followed by `reps`
/// measured ones and returns the median, which is far more stable than a
/// single shot or a best-of under scheduler noise. Timing always happens
/// (bench bins need numbers with `CMR_OBS` unset); the median is
/// *additionally* recorded into the named histogram when telemetry is
/// enabled. `reps` is clamped to at least 1.
pub fn time_block<T>(name: &str, warmup: usize, reps: usize, mut f: impl FnMut() -> T) -> TimeBlock {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let median_s = times.get(times.len() / 2).copied().unwrap_or(0.0);
    crate::observe(name, median_s);
    TimeBlock { median_s, reps, warmup }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn span_records_into_the_named_histogram() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::reset();
        crate::set_enabled(true);
        {
            let _span = span("span.test_s");
            std::hint::black_box(vec![0u8; 1024]);
        }
        crate::set_enabled(false);
        let snap = crate::snapshot("span.");
        let h = snap.histogram("span.test_s").expect("histogram recorded");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn time_block_counts_calls_and_works_disabled() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::reset();
        crate::set_enabled(false);
        let mut calls = 0usize;
        let tb = time_block("tb.test_s", 2, 5, || calls += 1);
        assert_eq!(calls, 7, "warmup + measured reps all execute");
        assert_eq!(tb.reps, 5);
        assert_eq!(tb.warmup, 2);
        assert!(tb.median_s >= 0.0);
        // Disabled: nothing reached the registry.
        assert!(crate::snapshot("tb.").histogram("tb.test_s").is_none());

        crate::set_enabled(true);
        let tb = time_block("tb.test_s", 0, 0, || ());
        crate::set_enabled(false);
        assert_eq!(tb.reps, 1, "reps clamps to at least one");
        let snap = crate::snapshot("tb.");
        assert_eq!(snap.histogram("tb.test_s").map(|h| h.count), Some(1));
    }
}
